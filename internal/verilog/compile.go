package verilog

// Lowering from the elaborated EExpr/EStmt forms to the flat program of
// ir.go. The rules mirror the interpreter in exec.go operation for
// operation (same masks, same division-by-zero and out-of-range-shift
// conventions, same case-label ordering), which the differential operator
// tests and the dverify backend oracle enforce.

// ProgBuilder assembles a Program. The zero temp watermark sits just
// above the net slots; expression lowering allocates temporaries
// stack-wise (Mark/Release) so one statement's temps are reused by the
// next and the frame stays small.
type ProgBuilder struct {
	code     []Instr
	cases    []caseTable
	nbConsts []NBWrite
	roms     []romTable
	numNets  int
	tempTop  int32
	maxSlot  int32
}

// NewProgBuilder starts a program whose first numNets slots alias nets.
func NewProgBuilder(numNets int) *ProgBuilder {
	return &ProgBuilder{numNets: numNets, tempTop: int32(numNets), maxSlot: int32(numNets)}
}

// PC returns the next instruction's index.
func (b *ProgBuilder) PC() int { return len(b.code) }

// Emit appends one instruction and returns its index.
func (b *ProgBuilder) Emit(op IOp, dst, a, bb int32, imm uint64) int {
	b.code = append(b.code, Instr{Op: op, Dst: dst, A: a, B: bb, Imm: imm})
	return len(b.code) - 1
}

// Patch sets the jump target of the branch at pc.
func (b *ProgBuilder) Patch(pc, target int) { b.code[pc].Dst = int32(target) }

// Temp allocates the next temporary slot.
func (b *ProgBuilder) Temp() int32 {
	s := b.tempTop
	b.tempTop++
	if b.tempTop > b.maxSlot {
		b.maxSlot = b.tempTop
	}
	return s
}

// Mark returns the temp watermark; Release rewinds to it, recycling every
// temporary allocated since the matching Mark.
func (b *ProgBuilder) Mark() int32        { return b.tempTop }
func (b *ProgBuilder) Release(mark int32) { b.tempTop = mark }

// Build finalizes the shared fields. Section bounds and fragments are the
// caller's to fill in.
func (b *ProgBuilder) Build() *Program {
	return &Program{Code: b.code, Cases: b.cases, Roms: b.roms, NBConsts: b.nbConsts, NumNets: b.numNets, NumSlots: int(b.maxSlot)}
}

// CompileNetlist lowers an elaborated netlist into its execution program:
// the comb section holds continuous assigns and combinational processes
// (in CombOrder when acyclic, as fixpoint fragments otherwise), the seq
// section every edge-triggered process.
func CompileNetlist(nl *Netlist) *Program {
	b := NewProgBuilder(len(nl.Nets))
	c := &netCompiler{b: b, nl: nl}

	var frags []Frag
	combStart := b.PC()
	if nl.CombOrder != nil {
		for _, item := range nl.CombOrder {
			if item < len(nl.Assigns) {
				c.assign(&nl.Assigns[item])
			} else {
				c.stmt(nl.Combs[item-len(nl.Assigns)].Body)
			}
		}
	} else {
		// Cyclic comb logic: one fragment per unit, in the interpreter's
		// fixpoint order (assigns first, then processes).
		for i := range nl.Assigns {
			a := &nl.Assigns[i]
			start := b.PC()
			c.assign(a)
			writes := make([]int32, len(a.LHS))
			for k, r := range a.LHS {
				writes[k] = int32(r.Net)
			}
			frags = append(frags, Frag{Start: start, End: b.PC(), Writes: writes})
		}
		for _, p := range nl.Combs {
			start := b.PC()
			c.stmt(p.Body)
			writes := make([]int32, len(p.Writes))
			for k, n := range p.Writes {
				writes[k] = int32(n)
			}
			frags = append(frags, Frag{Start: start, End: b.PC(), Writes: writes})
		}
	}
	combEnd := b.PC()

	seqStart := b.PC()
	for _, p := range nl.Seqs {
		c.stmt(p.Body)
	}
	seqEnd := b.PC()

	acyclic := nl.CombOrder != nil
	// A design with no comb units at all is trivially acyclic for the
	// step-tail transform even though CombOrder is nil.
	tailOK := acyclic || len(nl.Assigns)+len(nl.Combs) == 0
	stepStart, stepEnd := buildStepTail(b, nl, tailOK, combStart, combEnd, seqStart, seqEnd)

	p := b.Build()
	p.CombStart, p.CombEnd = combStart, combEnd
	p.SeqStart, p.SeqEnd = seqStart, seqEnd
	p.Acyclic = acyclic
	p.CombFrags = frags
	p.SettleLimit = 64 + len(nl.Assigns) + len(nl.Combs)
	p.StepStart, p.StepEnd = stepStart, stepEnd
	return p
}

// stepTailMaxInstrs bounds the comb+seq size eligible for the fused
// step-tail fast path: the transform's win is fixed per-cycle overhead
// (NBA append/commit traffic, three dispatch-loop entries), which only
// matters when the program itself is tiny — reset synchronizers, small
// pipelines, glue FFs.
const stepTailMaxInstrs = 48

// buildStepTail appends the fused clock-edge section for short acyclic
// programs and returns its bounds (0,0 when ineligible). The transform:
//
//	prologue:  shadow[n] = n            for every NB-stored net n
//	seq':      the seq section with INBStore/INBStorePart/INBStoreBit/
//	           INBStoreConst rewritten as blocking stores into shadows
//	epilogue:  n = shadow[n]
//	comb':     the comb section re-targeted (branch fixup)
//
// Equivalence holds because (a) shadows are initialized from the nets, so
// a conditionally skipped NB store leaves the net unchanged through the
// unconditional move-back; (b) seq reads of NB-stored nets see pre-edge
// values either way (seq' only writes shadows); (c) NB stores to the same
// net apply in program order on the shadow exactly as CommitNBA applies
// them on the net; (d) eligibility (below) excludes the cases where
// commit-time read-modify-write could observe a blocking write. The
// dverify backend oracle and the corpus lockstep tests cross-check the
// result instruction for instruction against the interpreter.
func buildStepTail(b *ProgBuilder, nl *Netlist, acyclic bool, combStart, combEnd, seqStart, seqEnd int) (int, int) {
	if !acyclic || combEnd-combStart+seqEnd-seqStart > stepTailMaxInstrs {
		return 0, 0
	}
	// Eligibility: no case dispatch (case tables hold absolute targets and
	// would need duplication), no NB stores during settle (the tail never
	// clears NBA), and no net both blocking- and NB-stored in seq (the NB
	// commit would read the blocking write at commit time; the shadow
	// reads the pre-edge value).
	nbNets := []int32{}
	nbSeen := map[int32]bool{}
	blockNets := map[int32]bool{}
	markNB := func(net int32) {
		if !nbSeen[net] {
			nbSeen[net] = true
			nbNets = append(nbNets, net)
		}
	}
	for pc := combStart; pc < seqEnd; pc++ {
		in := &b.code[pc]
		switch in.Op {
		case ICase:
			return 0, 0
		case INop, IJmp, IJz, IJnz, IJeqImm, IJneImm:
			// No frame write; Dst is a jump target (or unused).
		case INBStore, INBStorePart, INBStoreBit, INBStoreConst:
			if pc < combEnd {
				return 0, 0
			}
			if in.Op == INBStoreConst {
				w := b.nbConsts[in.B]
				if w.Mask != nl.Nets[w.Net].Mask() {
					// A masked const write would expand to three
					// instructions and break the 1:1 branch fixup.
					return 0, 0
				}
				markNB(int32(w.Net))
			} else {
				markNB(in.Dst)
			}
		default:
			// Every other opcode writes frame slot Dst. A seq-section
			// write to a net slot is a blocking net store — including the
			// store-fused forms, where an ALU/const/ROM result is
			// retargeted straight to the net (so matching only IStore*
			// here would miss most blocking writes).
			if pc >= seqStart && int(in.Dst) < b.numNets {
				blockNets[in.Dst] = true
			}
		}
	}
	for _, n := range nbNets {
		if blockNets[n] {
			return 0, 0
		}
	}

	// Shadow slots sit above every temp the copied code uses.
	b.tempTop = b.maxSlot
	shadow := map[int32]int32{}
	for _, n := range nbNets {
		shadow[n] = b.Temp()
	}

	start := b.PC()
	for _, n := range nbNets {
		b.Emit(IMove, shadow[n], n, 0, 0)
	}
	seqDelta := b.PC() - seqStart
	for pc := seqStart; pc < seqEnd; pc++ {
		in := b.code[pc]
		switch in.Op {
		case IJmp, IJz, IJnz, IJeqImm, IJneImm:
			in.Dst += int32(seqDelta)
			b.code = append(b.code, in)
		case INBStore:
			b.Emit(IStore, shadow[in.Dst], in.A, 0, in.Imm)
		case INBStorePart:
			b.Emit(IStorePart, shadow[in.Dst], in.A, in.B, in.Imm)
		case INBStoreBit:
			b.Emit(IStoreBit, shadow[in.Dst], in.A, in.B, in.Imm)
		case INBStoreConst:
			// Full-mask by eligibility: the commit is a plain overwrite.
			w := b.nbConsts[in.B]
			b.Emit(IConst, shadow[int32(w.Net)], 0, 0, w.Val)
		default:
			b.code = append(b.code, in)
		}
	}
	for _, n := range nbNets {
		b.Emit(IMove, n, shadow[n], 0, 0)
	}
	combDelta := b.PC() - combStart
	for pc := combStart; pc < combEnd; pc++ {
		in := b.code[pc]
		switch in.Op {
		case IJmp, IJz, IJnz, IJeqImm, IJneImm:
			in.Dst += int32(combDelta)
		}
		b.code = append(b.code, in)
	}
	return start, b.PC()
}

type netCompiler struct {
	b  *ProgBuilder
	nl *Netlist
}

// expr lowers e and returns the slot holding its value. Net reads return
// the net slot itself (no copy); everything else lands in a temporary at
// the caller's current watermark. The emitting instruction reads all
// operands before writing Dst, so a result slot may alias an operand.
func (c *netCompiler) expr(e *EExpr) int32 {
	b := c.b
	mark := b.Mark()
	res := func(op IOp, a, bb int32, imm uint64) int32 {
		b.Release(mark)
		dst := b.Temp()
		b.Emit(op, dst, a, bb, imm)
		return dst
	}
	switch e.Op {
	case OpConst:
		return res(IConst, 0, 0, e.Val)
	case OpNet:
		return int32(e.Net)
	case OpIndex:
		idx := c.expr(e.A)
		return res(IBitRead, int32(e.Net), idx, 0)
	case OpPart:
		return res(IPartRead, int32(e.Net), int32(e.Lo), WidthMask(e.W))
	case OpNot:
		return res(INot, c.expr(e.A), 0, WidthMask(e.W))
	case OpLogNot:
		return res(ILogNot, c.expr(e.A), 0, 0)
	case OpNeg:
		return res(INeg, c.expr(e.A), 0, WidthMask(e.W))
	case OpRedAnd:
		return res(IRedAnd, c.expr(e.A), 0, WidthMask(e.A.W))
	case OpRedOr:
		return res(IRedOr, c.expr(e.A), 0, 0)
	case OpRedXor:
		return res(IRedXor, c.expr(e.A), 0, 0)
	case OpRedNand:
		return res(IRedNand, c.expr(e.A), 0, WidthMask(e.A.W))
	case OpRedNor:
		return res(IRedNor, c.expr(e.A), 0, 0)
	case OpRedXnor:
		return res(IRedXnor, c.expr(e.A), 0, 0)
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpPow, OpXnor:
		ops := map[EOp]IOp{OpAdd: IAdd, OpSub: ISub, OpMul: IMul, OpDiv: IDiv, OpMod: IMod, OpPow: IPow, OpXnor: IXnor}
		a := c.expr(e.A)
		bb := c.expr(e.B)
		return res(ops[e.Op], a, bb, WidthMask(e.W))
	case OpAnd, OpOr, OpXor, OpLogAnd, OpLogOr, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		// Equality against a constant (the dominant condition shape)
		// fuses the operand into the compare's immediate.
		if e.Op == OpEq || e.Op == OpNe {
			op := ICmpEqImm
			if e.Op == OpNe {
				op = ICmpNeImm
			}
			if e.B.Op == OpConst {
				return res(op, c.expr(e.A), 0, e.B.Val)
			}
			if e.A.Op == OpConst {
				return res(op, c.expr(e.B), 0, e.A.Val)
			}
		}
		ops := map[EOp]IOp{OpAnd: IAnd, OpOr: IOr, OpXor: IXor, OpLogAnd: ILogAnd, OpLogOr: ILogOr,
			OpEq: IEq, OpNe: INe, OpLt: ILt, OpLe: ILe, OpGt: IGt, OpGe: IGe}
		a := c.expr(e.A)
		bb := c.expr(e.B)
		return res(ops[e.Op], a, bb, 0)
	case OpShl:
		a := c.expr(e.A)
		s := c.expr(e.B)
		return res(IShl, a, s, WidthMask(e.W))
	case OpShr:
		a := c.expr(e.A)
		s := c.expr(e.B)
		return res(IShr, a, s, 0)
	case OpTernary:
		cond := c.expr(e.A)
		b.Release(mark)
		dst := b.Temp()
		jz := b.Emit(IJz, 0, cond, 0, 0)
		c.exprInto(e.B, dst)
		jend := b.Emit(IJmp, 0, 0, 0, 0)
		b.Patch(jz, b.PC())
		c.exprInto(e.C, dst)
		b.Patch(jend, b.PC())
		return dst
	case OpConcat:
		b.Release(mark)
		dst := b.Temp()
		b.Emit(IConst, dst, 0, 0, 0)
		inner := b.Mark()
		for _, part := range e.Parts {
			p := c.expr(part)
			b.Emit(IConcat, dst, p, int32(part.W), WidthMask(part.W))
			b.Release(inner)
		}
		b.Emit(IAndImm, dst, dst, 0, WidthMask(e.W))
		return dst
	}
	panic("verilog: unknown expression op in lowering")
}

// exprInto lowers e, forcing the result into dst.
func (c *netCompiler) exprInto(e *EExpr, dst int32) {
	mark := c.b.Mark()
	s := c.expr(e)
	c.b.Release(mark)
	if s != dst {
		c.b.Emit(IMove, dst, s, 0, 0)
	}
}

// storeRef emits the store of the value in slot v through one LRef,
// blocking or non-blocking.
func (c *netCompiler) storeRef(l *LRef, v int32, blocking bool) {
	b := c.b
	net := int32(l.Net)
	width := c.nl.Nets[l.Net].Width
	switch {
	case l.IsBit:
		idx := c.expr(l.BitIdx)
		if blocking {
			b.Emit(IStoreBit, net, v, idx, uint64(width))
		} else {
			b.Emit(INBStoreBit, net, v, idx, uint64(width))
		}
	case l.IsPart:
		if blocking {
			b.Emit(IStorePart, net, v, int32(l.Lo), WidthMask(l.W))
		} else {
			b.Emit(INBStorePart, net, v, int32(l.Lo), WidthMask(l.W))
		}
	default:
		if blocking {
			b.Emit(IStore, net, v, 0, WidthMask(width))
		} else {
			b.Emit(INBStore, net, v, 0, WidthMask(width))
		}
	}
}

// assignRefs distributes the value in slot v over the (possibly
// concatenated, MSB-first) LHS refs, from the LSB end — the interpreter's
// exact order, including the order NB writes are appended in.
func (c *netCompiler) assignRefs(lhs []LRef, v int32, blocking bool) {
	b := c.b
	if len(lhs) == 1 {
		c.storeRef(&lhs[0], v, blocking)
		return
	}
	shift := 0
	for i := len(lhs) - 1; i >= 0; i-- {
		l := &lhs[i]
		w := refWidth(l, c.nl.Nets)
		mark := b.Mark()
		part := b.Temp()
		b.Emit(IPartRead, part, v, int32(shift), WidthMask(w))
		c.storeRef(l, part, blocking)
		b.Release(mark)
		shift += w
	}
}

// emitBranchIfFalse emits a branch taken when the condition in slot cond
// is zero, fusing a condition that just compiled to an immediate compare
// or logical-not into the branch itself. Returns the branch's pc for
// patching.
func (c *netCompiler) emitBranchIfFalse(cond int32) int {
	b := c.b
	if last := b.PC() - 1; last >= 0 && cond >= int32(b.numNets) {
		in := &b.code[last]
		if in.Dst == cond {
			switch in.Op {
			case ICmpEqImm:
				// (x == K) is false  <=>  x != K.
				op, a, imm := IJneImm, in.A, in.Imm
				b.code[last] = Instr{Op: op, A: a, Imm: imm}
				return last
			case ICmpNeImm:
				op, a, imm := IJeqImm, in.A, in.Imm
				b.code[last] = Instr{Op: op, A: a, Imm: imm}
				return last
			case ILogNot:
				// (!x) is false  <=>  x != 0.
				a := in.A
				b.code[last] = Instr{Op: IJnz, A: a}
				return last
			}
		}
	}
	return b.Emit(IJz, 0, cond, 0, 0)
}

// assign lowers one continuous assignment.
func (c *netCompiler) assign(a *CompiledAssign) {
	c.lowerAssign(a.LHS, a.RHS, true)
}

// lowerAssign lowers one assignment with two peepholes on the dominant
// whole-net single-LHS shape: a blocking store retargets a
// single-instruction RHS to write the net slot directly (dropping the
// temp + IStore pair) when the instruction's result provably fits the
// net width, and a non-blocking constant store (the reset-chain shape
// `reg <= 0`) becomes one side-table append.
func (c *netCompiler) lowerAssign(lhs []LRef, rhs *EExpr, blocking bool) {
	b := c.b
	if len(lhs) == 1 && !lhs[0].IsBit && !lhs[0].IsPart {
		net := int32(lhs[0].Net)
		netMask := WidthMask(c.nl.Nets[lhs[0].Net].Width)
		if !blocking && rhs.Op == OpConst {
			idx := len(b.nbConsts)
			b.nbConsts = append(b.nbConsts, NBWrite{Net: lhs[0].Net, Mask: netMask, Val: rhs.Val & netMask})
			b.Emit(INBStoreConst, 0, 0, int32(idx), 0)
			return
		}
		if blocking {
			mark := b.Mark()
			v := c.expr(rhs)
			// Retarget the RHS's final instruction to write the net slot
			// directly when that is provably equivalent to the masked
			// store: the value fits the net width (elaboration's width
			// invariant — every expression value is <= WidthMask(e.W)),
			// the result is a temp whose last write is the final
			// instruction (ternaries write from two branch paths, so
			// they are excluded), and the temp dies here.
			last := b.PC() - 1
			if v >= int32(b.numNets) && rhs.Op != OpTernary &&
				last >= 0 && b.code[last].Dst == v &&
				WidthMask(rhs.W)&^netMask == 0 {
				b.code[last].Dst = net
			} else {
				b.Emit(IStore, net, v, 0, netMask)
			}
			b.Release(mark)
			return
		}
	}
	mark := b.Mark()
	v := c.expr(rhs)
	c.assignRefs(lhs, v, blocking)
	b.Release(mark)
}

// romLimit caps the dense ROM index space (the corpus's widest decode
// tables are 12-bit); cases with larger label values use the generic
// dispatch path.
const romLimit = 1 << 13

// netConst is one compile-time-resolved constant whole-net assignment.
type netConst struct {
	net int
	val uint64
}

// constAssigns flattens a case arm into its constant whole-net blocking
// assignments, or reports the arm non-conforming. A nil statement is an
// empty (conforming) arm.
func constAssigns(s *EStmt, nets []*Net, out []netConst) ([]netConst, bool) {
	if s == nil {
		return out, true
	}
	switch s.Op {
	case SBlock:
		for _, sub := range s.Stmts {
			var ok bool
			if out, ok = constAssigns(sub, nets, out); !ok {
				return nil, false
			}
		}
		return out, true
	case SAssign:
		if !s.Blocking || len(s.LHS) != 1 || s.LHS[0].IsBit || s.LHS[0].IsPart || s.RHS.Op != OpConst {
			return nil, false
		}
		net := s.LHS[0].Net
		return append(out, netConst{net: net, val: s.RHS.Val & WidthMask(nets[net].Width)}), true
	}
	return nil, false
}

// tryRomCase lowers a case statement whose arms only assign constants to
// whole nets — the corpus's big decode tables — into one IRom per target
// net: a dense write-enabled value table indexed by the subject, with
// unlabeled and out-of-range subjects taking the default arm (or leaving
// the net untouched when there is none). Semantically identical to the
// dispatch path (first matching label wins, unassigned nets keep their
// values, later assignments in an arm win) but executes in O(targets)
// instead of O(arm body) with no branching.
func (c *netCompiler) tryRomCase(s *EStmt) bool {
	b := c.b
	maxLabel := uint64(0)
	for _, labels := range s.Labels {
		for _, lab := range labels {
			if lab.mask != ^uint64(0) {
				return false
			}
			if lab.value > maxLabel {
				maxLabel = lab.value
			}
		}
	}
	if maxLabel >= romLimit {
		return false
	}
	arms := make([][]netConst, len(s.Arms))
	for i, arm := range s.Arms {
		a, ok := constAssigns(arm, c.nl.Nets, nil)
		if !ok {
			return false
		}
		arms[i] = a
	}
	def, ok := constAssigns(s.Default, c.nl.Nets, nil)
	if !ok {
		return false
	}

	// Ordered union of assigned nets; per-arm final values (blocking
	// semantics: the arm's last assignment to a net wins).
	var targets []int
	seen := map[int]int{}
	final := func(list []netConst) map[int]uint64 {
		m := make(map[int]uint64, len(list))
		for _, a := range list {
			if _, ok := seen[a.net]; !ok {
				seen[a.net] = len(targets)
				targets = append(targets, a.net)
			}
			m[a.net] = a.val
		}
		return m
	}
	armVals := make([]map[int]uint64, len(arms))
	for i, a := range arms {
		armVals[i] = final(a)
	}
	defVals := final(def)
	if len(targets) == 0 {
		// No assignment anywhere: the whole case is a no-op.
		return true
	}

	size := int(maxLabel) + 1
	romIdx := make([]int, len(targets))
	for k, net := range targets {
		t := romTable{vals: make([]uint64, size), write: make([]bool, size)}
		if v, ok := defVals[net]; ok {
			t.defVal, t.defWrite = v, true
		}
		for i := range t.vals {
			t.vals[i], t.write[i] = t.defVal, t.defWrite
		}
		romIdx[k] = len(b.roms)
		b.roms = append(b.roms, t)
	}
	claimed := make([]bool, size)
	for i, labels := range s.Labels {
		for _, lab := range labels {
			v := lab.value
			if claimed[v] {
				continue // first matching label wins
			}
			claimed[v] = true
			for k, net := range targets {
				t := &b.roms[romIdx[k]]
				if val, ok := armVals[i][net]; ok {
					t.vals[v], t.write[v] = val, true
				} else {
					t.write[v] = false
				}
			}
		}
	}

	mark := b.Mark()
	subj := c.expr(s.Subject)
	for k, net := range targets {
		b.Emit(IRom, int32(net), subj, int32(romIdx[k]), 0)
	}
	b.Release(mark)
	return true
}

// stmt lowers one behavioural statement.
func (c *netCompiler) stmt(s *EStmt) {
	if s == nil {
		return
	}
	b := c.b
	switch s.Op {
	case SBlock:
		for _, sub := range s.Stmts {
			c.stmt(sub)
		}
	case SAssign:
		c.lowerAssign(s.LHS, s.RHS, s.Blocking)
	case SIf:
		mark := b.Mark()
		cond := c.expr(s.Cond)
		b.Release(mark)
		jz := c.emitBranchIfFalse(cond)
		c.stmt(s.Then)
		if s.Else == nil {
			b.Patch(jz, b.PC())
			return
		}
		jend := b.Emit(IJmp, 0, 0, 0, 0)
		b.Patch(jz, b.PC())
		c.stmt(s.Else)
		b.Patch(jend, b.PC())
	case SCase:
		if c.tryRomCase(s) {
			return
		}
		mark := b.Mark()
		subj := c.expr(s.Subject)
		b.Release(mark)
		// Dispatch through a side table holding either the exact-label
		// map (the interpreter's labelMap fast path) or the in-order
		// masked scan list — the same first-match semantics and data
		// layout, so huge decoder tables stay O(1)/cache-friendly.
		tableIdx := len(b.cases)
		b.cases = append(b.cases, caseTable{})
		ic := b.Emit(ICase, 0, subj, int32(tableIdx), 0)
		armTargets := make([]int32, len(s.Arms))
		var ends []int
		for i, arm := range s.Arms {
			armTargets[i] = int32(b.PC())
			c.stmt(arm)
			ends = append(ends, b.Emit(IJmp, 0, 0, 0, 0))
		}
		b.Patch(ic, b.PC())
		c.stmt(s.Default)
		for _, pc := range ends {
			b.Patch(pc, b.PC())
		}
		ct := &b.cases[tableIdx]
		if s.labelMap != nil {
			ct.m = make(map[uint64]int32, len(s.labelMap))
			// Map-to-map copy, no order dependence.
			//ab:allow maprange
			for v, arm := range s.labelMap {
				ct.m[v] = armTargets[arm]
			}
		} else {
			for i, labels := range s.Labels {
				for _, lab := range labels {
					ct.scan = append(ct.scan, caseScanEntry{val: lab.value & lab.mask, mask: lab.mask, target: armTargets[i]})
				}
			}
		}
	}
}
