package verilog

import "testing"

// FuzzParseVerilog drives the lexer/parser (and, for valid inputs, the
// printer and elaborator) with arbitrary source text. Invariants:
// parsing never panics; the printed form of any parse re-parses; and a
// design that elaborates keeps an identical netlist signature across the
// print/parse round-trip. Seed corpus under testdata/fuzz/.
func FuzzParseVerilog(f *testing.F) {
	f.Add("module m(a, y); input a; output y; assign y = ~a; endmodule")
	f.Add("module m(clk, rst, q); input clk, rst; output q; reg q;\n" +
		"always @(posedge clk or posedge rst) if (rst) q <= 0; else q <= ~q; endmodule")
	f.Add("module m #(parameter W = 3) (d, y); input [W-1:0] d; output y; assign y = ^d; endmodule")
	f.Add("module a(x, y); input x; output y; assign y = x; endmodule\n" +
		"module b(p, q); input p; output q; a u (.x(p), .y(q)); endmodule")
	f.Add("module m(s, y); input [1:0] s; output y; reg y;\n" +
		"always @(*) casez (s) 2'b0?: y = 0; default: y = 1; endcase endmodule")
	f.Add("module m(d, o); input [3:0] d; output o; reg o; integer i;\n" +
		"always @(*) begin o = 0; for (i = 0; i < 4; i = i + 1) o = o ^ d[i]; end endmodule")
	f.Add("module m(a, y); input [7:0] a; output [15:0] y; assign y = {2{a}}; endmodule")
	f.Add("module m(); endmodule")
	f.Add("always @(")
	f.Add("module m(a; input a; endmodule")
	f.Add("module m(a, y); input a; output y; assign y = 64'hffffffffffffffff; endmodule")

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			return // bound parser recursion and elaboration cost
		}
		file, err := Parse(src)
		if err != nil {
			return
		}
		printed := PrintFile(file)
		file2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form of a valid parse does not re-parse: %v\nsource: %q\nprinted: %q", err, src, printed)
		}
		top := file.Modules[len(file.Modules)-1].Name
		nl, err := Elaborate(file, top, nil)
		if err != nil {
			return
		}
		nl2, err := Elaborate(file2, top, nil)
		if err != nil {
			t.Fatalf("printed form of an elaborable design does not re-elaborate: %v\nsource: %q\nprinted: %q", err, src, printed)
		}
		if !SignatureEqual(nl, nl2) {
			t.Fatalf("netlist signature changed across print/parse round-trip\nsource: %q\nprinted: %q\n-- original --\n%s\n-- reprinted --\n%s",
				src, printed, nl.Signature(), nl2.Signature())
		}
	})
}
