package verilog_test

import (
	"math/rand"
	"testing"

	"assertionbench/internal/sim"
	"assertionbench/internal/verilog"
)

// slicedTestSrcs cover the sliced compiler's op space: carry arithmetic,
// the per-lane scalar escapes (mul/div/mod), barrel shifts, reductions,
// comparisons, ternaries, case dispatch, part-select and concat writes,
// blocking chains inside comb always blocks, and nonblocking state.
var slicedTestSrcs = []struct {
	name, src, top string
}{
	{"alu", `
module alu(input [7:0] a, input [7:0] b, input [2:0] op, output reg [7:0] y);
always @(*)
  case (op)
    3'd0: y = a + b;
    3'd1: y = a - b;
    3'd2: y = a * b;
    3'd3: y = a / b;
    3'd4: y = a % b;
    3'd5: y = a << b[2:0];
    3'd6: y = a >> b[2:0];
    default: y = (a < b) ? ~a : (a & b);
  endcase
endmodule`, "alu"},
	{"acc", `
module acc(clk, rst, en, d, q, flags);
input clk, rst, en;
input [7:0] d;
output [15:0] q; reg [15:0] q;
output [3:0] flags;
wire parity; wire allset; wire [7:0] mix;
assign parity = ^d;
assign allset = &q[7:0];
assign mix = {d[3:0], q[3:0]} ^ (d >> 2);
assign flags = {parity, allset, |mix, q == 16'd0};
always @(posedge clk) begin
  if (rst) q <= 16'd0;
  else if (en) q <= q + {8'd0, d} + {15'd0, parity};
end
endmodule`, "acc"},
	{"branchy", `
module branchy(input [7:0] a, input [7:0] b, output reg [7:0] y, output reg [7:0] z);
wire [7:0] t;
assign t = (a ^ b) + a;
always @(*) begin
  if (t[7]) y = t; else y = b - t;
  z = t ^ b;
end
endmodule`, "branchy"},
	{"seqblocking", `
module seqblocking(clk, d, q, r);
input clk; input [7:0] d;
output [7:0] q; reg [7:0] q;
output [7:0] r; reg [7:0] r;
reg [7:0] t;
always @(posedge clk) begin
  t = q ^ d;
  t = t + d;
  q <= t;
  r <= q;
end
endmodule`, "seqblocking"},
	{"wideshift", `
module wideshift(input [7:0] a, input [7:0] s, output [7:0] l, output [7:0] r, output [7:0] p);
assign l = a << s;
assign r = a >> s;
assign p = a ** s[1:0];
endmodule`, "wideshift"},
}

// TestSlicedMatchesScalar drives all 64 lanes of the bit-sliced machine
// with independent random stimulus and checks every net against 64
// scalar interpreter runs, cycle by cycle. This is the per-net, per-lane
// version of the agreement dverify oracle 7 enforces on whole verdicts.
func TestSlicedMatchesScalar(t *testing.T) {
	for _, tc := range slicedTestSrcs {
		t.Run(tc.name, func(t *testing.T) {
			nl, err := verilog.ElaborateSource(tc.src, tc.top)
			if err != nil {
				t.Fatal(err)
			}
			msl := verilog.NewSlicedMachine(nl)
			if msl == nil {
				t.Fatal("design unexpectedly unsupported by the sliced machine")
			}
			sims := make([]*sim.Simulator, verilog.SlicedLanes)
			for l := range sims {
				sims[l] = sim.New(nl)
			}
			rng := rand.New(rand.NewSource(11))
			lanes := make([]uint64, verilog.SlicedLanes)
			vals := make([][]uint64, verilog.SlicedLanes)
			for l := range vals {
				vals[l] = make([]uint64, len(nl.Inputs))
			}
			for cycle := 0; cycle < 24; cycle++ {
				for pos, idx := range nl.Inputs {
					mask := nl.Nets[idx].Mask()
					for l := 0; l < verilog.SlicedLanes; l++ {
						v := rng.Uint64() & mask
						lanes[l] = v
						vals[l][pos] = v
					}
					msl.SetInputLanes(pos, lanes)
				}
				msl.Settle()
				for l, s := range sims {
					if err := s.SetInputs(vals[l]); err != nil {
						t.Fatal(err)
					}
					s.Settle()
					env := s.Env()
					for idx := range nl.Nets {
						if got, want := msl.Lane(idx, l), env[idx]; got != want {
							t.Fatalf("cycle %d lane %d net %s: sliced %#x, scalar %#x",
								cycle, l, nl.Nets[idx].Name, got, want)
						}
					}
					s.Step()
				}
				msl.Step()
			}
		})
	}
}

// Cyclic designs need the fixpoint interpreter; the sliced compiler must
// refuse them rather than mis-evaluate.
func TestSlicedRefusesCyclicDesign(t *testing.T) {
	nl, err := verilog.ElaborateSource(`
module loopy(input a, output x, output y);
assign x = y | a;
assign y = x & a;
endmodule`, "loopy")
	if err != nil {
		t.Fatal(err)
	}
	if verilog.SlicedSupported(nl) {
		t.Error("SlicedSupported true for a cyclic design")
	}
	if verilog.NewSlicedMachine(nl) != nil {
		t.Error("NewSlicedMachine built a machine for a cyclic design")
	}
}
