package verilog

// The AST mirrors source structure before elaboration. All nodes carry the
// line of their first token for diagnostics.

// SourceFile is a parsed compilation unit: one or more modules.
type SourceFile struct {
	Modules []*Module
}

// FindModule returns the module named name, or nil.
func (f *SourceFile) FindModule(name string) *Module {
	for _, m := range f.Modules {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// PortDir is a port direction.
type PortDir int

// Port directions.
const (
	DirInput PortDir = iota
	DirOutput
	DirInout
)

func (d PortDir) String() string {
	switch d {
	case DirInput:
		return "input"
	case DirOutput:
		return "output"
	default:
		return "inout"
	}
}

// Range is a vector range [MSB:LSB]; both bounds are constant expressions.
type Range struct {
	MSB Expr
	LSB Expr
}

// Module is a module declaration.
type Module struct {
	Name   string
	Line   int
	Ports  []*Port      // in header order
	Params []*Param     // parameters and localparams, in order
	Decls  []*Decl      // wire/reg/integer declarations (incl. port redecls)
	Items  []ModuleItem // assigns, always blocks, instances, in order
}

// Port is a module port. Its direction and range may come from the header
// (ANSI style) or from a body declaration (non-ANSI style).
type Port struct {
	Name  string
	Dir   PortDir
	Range *Range // nil for scalar
	IsReg bool
	Line  int
}

// Param is a parameter or localparam declaration.
type Param struct {
	Name  string
	Value Expr
	Local bool
	Line  int
}

// DeclKind classifies variable declarations.
type DeclKind int

// Declaration kinds.
const (
	DeclWire DeclKind = iota
	DeclReg
	DeclInteger
)

// Decl declares one net or variable.
type Decl struct {
	Kind  DeclKind
	Name  string
	Range *Range // nil for scalar; integers are 32-bit
	Init  Expr   // optional initializer (wire w = expr)
	Line  int
}

// ModuleItem is an element of a module body.
type ModuleItem interface{ itemNode() }

// AssignItem is a continuous assignment.
type AssignItem struct {
	LHS  Expr // identifier, bit-select, part-select or concatenation
	RHS  Expr
	Line int
}

// AlwaysItem is an always block.
type AlwaysItem struct {
	Events []EventExpr // empty means @(*) (or wildcard)
	Star   bool        // @* / @(*)
	Body   Stmt
	Line   int
}

// InitialItem is an initial block (accepted, ignored by elaboration).
type InitialItem struct {
	Body Stmt
	Line int
}

// InstanceItem is a module instantiation.
type InstanceItem struct {
	ModName   string
	InstName  string
	ParamsPos []Expr          // positional parameter overrides
	Params    map[string]Expr // named parameter overrides
	ConnsPos  []Expr          // positional port connections
	Conns     map[string]Expr // named port connections (nil expr = open)
	Line      int
}

func (*AssignItem) itemNode()   {}
func (*AlwaysItem) itemNode()   {}
func (*InitialItem) itemNode()  {}
func (*InstanceItem) itemNode() {}

// EdgeKind is the sensitivity edge of an event expression.
type EdgeKind int

// Edge kinds.
const (
	EdgeNone EdgeKind = iota // level sensitivity (combinational lists)
	EdgePos
	EdgeNeg
)

// EventExpr is one entry of a sensitivity list.
type EventExpr struct {
	Edge   EdgeKind
	Signal string
	Line   int
}

// Stmt is a behavioural statement.
type Stmt interface{ stmtNode() }

// BlockStmt is begin ... end.
type BlockStmt struct {
	Stmts []Stmt
	Line  int
}

// AssignStmt is a procedural assignment.
type AssignStmt struct {
	LHS      Expr
	RHS      Expr
	Blocking bool
	Line     int
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
	Line int
}

// CaseStmt is case/casez/casex.
type CaseStmt struct {
	Subject Expr
	Wild    bool // casez/casex: ? and z digits are don't-care
	Items   []CaseItem
	Default Stmt // may be nil
	Line    int
}

// CaseItem is one labelled arm of a case statement.
type CaseItem struct {
	Labels []Expr
	Body   Stmt
}

// ForStmt is a for loop with constant bounds (unrolled at elaboration).
type ForStmt struct {
	Init *AssignStmt
	Cond Expr
	Step *AssignStmt
	Body Stmt
	Line int
}

// NullStmt is a lone semicolon.
type NullStmt struct{ Line int }

func (*BlockStmt) stmtNode()  {}
func (*AssignStmt) stmtNode() {}
func (*IfStmt) stmtNode()     {}
func (*CaseStmt) stmtNode()   {}
func (*ForStmt) stmtNode()    {}
func (*NullStmt) stmtNode()   {}

// Expr is an expression.
type Expr interface{ exprNode() }

// Ident is a name reference.
type Ident struct {
	Name string
	Line int
}

// Number is a numeric literal. Width 0 means unsized.
type Number struct {
	Value uint64
	Width int
	Line  int
}

// Unary is a unary operation: ~ ! - + and reductions & | ^ ~& ~| ~^.
type Unary struct {
	Op   string
	X    Expr
	Line int
}

// Binary is a binary operation.
type Binary struct {
	Op   string
	X, Y Expr
	Line int
}

// Ternary is cond ? a : b.
type Ternary struct {
	Cond, Then, Else Expr
	Line             int
}

// Index is base[idx] (bit select).
type Index struct {
	Base Expr
	Idx  Expr
	Line int
}

// PartSelect is base[msb:lsb] with constant bounds.
type PartSelect struct {
	Base     Expr
	MSB, LSB Expr
	Line     int
}

// Concat is {a, b, ...}.
type Concat struct {
	Parts []Expr
	Line  int
}

// Repl is {n{expr}}.
type Repl struct {
	Count Expr
	Value Expr
	Line  int
}

// Call is a system-function call such as $rose(sig) or $past(sig, 2).
// Calls are rejected in design code; the SVA layer gives them temporal
// semantics.
type Call struct {
	Name string // includes the leading '$'
	Args []Expr
	Line int
}

func (*Ident) exprNode()      {}
func (*Call) exprNode()       {}
func (*Number) exprNode()     {}
func (*Unary) exprNode()      {}
func (*Binary) exprNode()     {}
func (*Ternary) exprNode()    {}
func (*Index) exprNode()      {}
func (*PartSelect) exprNode() {}
func (*Concat) exprNode()     {}
func (*Repl) exprNode()       {}

// exprLine reports the source line of an expression for diagnostics.
func exprLine(e Expr) int {
	switch v := e.(type) {
	case *Ident:
		return v.Line
	case *Number:
		return v.Line
	case *Unary:
		return v.Line
	case *Binary:
		return v.Line
	case *Ternary:
		return v.Line
	case *Index:
		return v.Line
	case *PartSelect:
		return v.Line
	case *Concat:
		return v.Line
	case *Repl:
		return v.Line
	case *Call:
		return v.Line
	}
	return 0
}
