package verilog

// Constant sweeping: a cone-of-influence projection that additionally
// cuts fan-in at nets a static analysis has proven constant. The
// transitive-fan-in traversal stops at such nets instead of pulling in
// their drivers; swept nets stay in the projection (properties may read
// them) but are pinned by a synthesized `assign net = K` (or, for
// registers — always constant zero, their power-on value — by nothing
// at all, with the net removed from the register list so it stops
// occupying state bits). This shrinks StateBits()/InputBits() beyond
// the structural cut whenever constant-driven logic feeds a property.
//
// Soundness: a swept net's value in the reduced design is K at every
// settle, exactly its value in the full design at every sample point
// (that is what "proven constant" means, and internal/vstatic's
// fixpoint covers every reachable environment). A driver unit survives
// iff the traversal reached it, and a unit sharing a write with a
// surviving unit is never swept away partially: the closure re-runs
// with such nets marked unsweepable until no surviving unit writes a
// swept net. dverify oracle 8 cross-checks swept verdicts against
// unswept FPV over the fuzz genome.

// NetConst records one net proven constant, with its settled value.
type NetConst struct {
	Net int
	Val uint64
}

// ConeForSwept returns the interned cone of influence of the support
// nets with constant sweeping applied. consts must be a pure function
// of the netlist (the shared static analysis guarantees this), so the
// swept cone for a support set is canonical and cacheable alongside the
// structural cones. With no constants the result is exactly ConeFor.
// Safe for concurrent use.
func (nl *Netlist) ConeForSwept(support []int, consts []NetConst) *Cone {
	if len(consts) == 0 {
		return nl.ConeFor(support)
	}
	// Swept keys are 1 mod 4 bytes long, structural keys 0 mod 4: the
	// two families can share the intern maps without collision.
	key := "s" + supportKey(support)
	nl.coneMu.Lock()
	defer nl.coneMu.Unlock()
	if c, ok := nl.coneByKey[key]; ok {
		return c
	}
	c := nl.buildSweptCone(support, consts)
	if nl.coneByKey == nil {
		nl.coneByKey = make(map[string]*Cone)
	}
	nl.coneByKey[key] = c
	return c
}

func (nl *Netlist) buildSweptCone(support []int, consts []NetConst) *Cone {
	if len(nl.CombOrder) != len(nl.Assigns)+len(nl.Combs) {
		return nl.identityCone()
	}
	constVal := make([]uint64, len(nl.Nets))
	sweepable := make([]bool, len(nl.Nets))
	for _, nc := range consts {
		n := nl.Nets[nc.Net]
		// Inputs and clocks are never constant; a constant register can
		// only hold its power-on zero (anything else would contradict the
		// fixpoint's zero start). Guard anyway: an ineligible net simply
		// is not swept, which is always sound.
		if n.IsInput || n.IsClock || (n.IsReg && nc.Val != 0) {
			continue
		}
		sweepable[nc.Net] = true
		constVal[nc.Net] = nc.Val
	}

	units, writers := nl.driverUnits()
	var kept, swept []bool
	done := make([]bool, len(units))
	for {
		kept = make([]bool, len(nl.Nets))
		swept = make([]bool, len(nl.Nets))
		for i := range done {
			done[i] = false
		}
		var queue []int
		add := func(n int) {
			if n >= 0 && n < len(kept) && !kept[n] {
				kept[n] = true
				queue = append(queue, n)
			}
		}
		for _, n := range support {
			add(n)
		}
		for _, n := range nl.Clocks {
			add(n)
		}
		for len(queue) > 0 {
			n := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if sweepable[n] {
				// Constant boundary: keep the net, cut its fan-in.
				swept[n] = true
				continue
			}
			for _, u := range writers[n] {
				if done[u] {
					continue
				}
				done[u] = true
				for _, r := range units[u].reads {
					add(r)
				}
				for _, w := range units[u].writes {
					add(w)
				}
			}
		}
		// A surviving unit must fully drive every net it writes: a swept
		// net with a surviving writer would be driven by only part of its
		// writer set in the projection. Un-sweep such nets and re-close;
		// the unsweepable set grows monotonically, so this terminates.
		changed := false
		for u := range done {
			if !done[u] {
				continue
			}
			for _, w := range units[u].writes {
				if swept[w] {
					sweepable[w] = false
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	anySwept := false
	for _, s := range swept {
		if s {
			anySwept = true
			break
		}
	}
	if !anySwept {
		// Sweeping changed nothing: fall back to the structural-cone
		// builder so equal closures intern to the same canonical cone.
		return nl.buildCone(support)
	}
	sig := "s" + coneSig(kept) + coneSig(swept)
	if c, ok := nl.coneBySig[sig]; ok {
		return c
	}
	c := nl.projectSwept(kept, swept, done, constVal)
	if nl.coneBySig == nil {
		nl.coneBySig = make(map[string]*Cone)
	}
	nl.coneBySig[sig] = c
	return c
}

// projectSwept builds the reduced netlist over the kept nets with
// per-unit survival (done) and constant pinning for swept nets.
func (nl *Netlist) projectSwept(kept, swept, done []bool, constVal []uint64) *Cone {
	c := &Cone{Full: nl, Map: make([]int, len(nl.Nets))}
	red := &Netlist{Name: nl.Name, byName: make(map[string]int)}
	for i, k := range kept {
		if !k {
			c.Map[i] = -1
			continue
		}
		old := nl.Nets[i]
		n := *old
		n.Index = len(red.Nets)
		if swept[i] {
			// A swept register holds its power-on zero forever; it stops
			// being a state element in the projection.
			n.IsReg = false
		}
		c.Map[i] = n.Index
		c.Inv = append(c.Inv, i)
		red.byName[n.Name] = n.Index
		red.Nets = append(red.Nets, &n)
	}
	remapNets := func(src []int, dropSwept bool) []int {
		var out []int
		for _, n := range src {
			if c.Map[n] < 0 || (dropSwept && swept[n]) {
				continue
			}
			out = append(out, c.Map[n])
		}
		return out
	}
	red.Inputs = remapNets(nl.Inputs, false)
	red.Clocks = remapNets(nl.Clocks, false)
	red.Outputs = remapNets(nl.Outputs, false)
	red.Regs = remapNets(nl.Regs, true)

	// Pin swept non-register nets with a nonzero constant via synthesized
	// assigns, placed first in evaluation order (they read nothing).
	// Zero-valued swept nets need no driver: simulation environments
	// power on all-zero and nothing in the projection writes them.
	for i, s := range swept {
		if !s || constVal[i] == 0 || nl.Nets[i].IsReg {
			continue
		}
		red.CombOrder = append(red.CombOrder, len(red.Assigns))
		red.Assigns = append(red.Assigns, CompiledAssign{
			LHS:  []LRef{{Net: c.Map[i]}},
			RHS:  &EExpr{Op: OpConst, Val: constVal[i], W: nl.Nets[i].Width},
			Line: nl.Nets[i].Line,
		})
	}

	assignMap := make([]int, len(nl.Assigns))
	for i := range nl.Assigns {
		assignMap[i] = -1
		if !done[i] {
			continue
		}
		a := &nl.Assigns[i]
		assignMap[i] = len(red.Assigns)
		red.Assigns = append(red.Assigns, CompiledAssign{
			LHS:  remapLRefs(a.LHS, c.Map),
			RHS:  remapExpr(a.RHS, c.Map),
			Line: a.Line,
		})
	}
	combMap := make([]int, len(nl.Combs))
	for i, p := range nl.Combs {
		combMap[i] = -1
		if !done[len(nl.Assigns)+i] {
			continue
		}
		combMap[i] = len(red.Combs)
		red.Combs = append(red.Combs, remapProcess(p, c.Map))
	}
	seqBase := len(nl.Assigns) + len(nl.Combs)
	for i, p := range nl.Seqs {
		if !done[seqBase+i] {
			continue
		}
		red.Seqs = append(red.Seqs, remapProcess(p, c.Map))
	}
	// A subsequence of a topological order stays topological; the
	// synthesized constant assigns are already queued ahead of it.
	for _, u := range nl.CombOrder {
		if u < len(nl.Assigns) {
			if assignMap[u] >= 0 {
				red.CombOrder = append(red.CombOrder, assignMap[u])
			}
		} else if ci := combMap[u-len(nl.Assigns)]; ci >= 0 {
			red.CombOrder = append(red.CombOrder, len(red.Assigns)+ci)
		}
	}
	c.Reduced = red
	return c
}
