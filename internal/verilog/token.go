// Package verilog implements a lexer, parser, and elaborator for a
// synthesizable subset of Verilog-2001 sufficient for the AssertionBench
// corpus: modules with ports and parameters, vector nets and registers,
// continuous assignments, always blocks (edge-sensitive and combinational),
// if/case statements, blocking and non-blocking assignments, and module
// instantiation (flattened during elaboration).
//
// The subset is the demonstration vehicle of the paper (Sec. II-A); designs
// outside the subset are rejected with position-annotated errors.
package verilog

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber  // literal, possibly sized/based
	TokString  // "..."
	TokKeyword // reserved word
	TokSymbol  // operator or punctuation
)

// Token is a single lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "EOF"
	case TokNumber:
		return fmt.Sprintf("number %q", t.Text)
	case TokIdent:
		return fmt.Sprintf("identifier %q", t.Text)
	case TokKeyword:
		return fmt.Sprintf("keyword %q", t.Text)
	case TokString:
		return fmt.Sprintf("string %q", t.Text)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// keywords is the reserved-word set of the supported subset.
var keywords = map[string]bool{
	"module": true, "endmodule": true, "input": true, "output": true,
	"inout": true, "wire": true, "reg": true, "integer": true,
	"parameter": true, "localparam": true, "assign": true,
	"always": true, "initial": true, "begin": true, "end": true,
	"if": true, "else": true, "case": true, "casez": true, "casex": true,
	"endcase": true, "default": true, "posedge": true, "negedge": true,
	"or": true, "and": true, "not": true, "for": true, "generate": true,
	"endgenerate": true, "genvar": true, "function": true,
	"endfunction": true, "signed": true, "unsigned": true,
}

// Error is a position-annotated front-end error.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("line %d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...interface{}) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
