package verilog

// Differential operator tests: for every EExpr operation and every EStmt
// form, the lowered program must agree with the tree-walking interpreter
// over randomized environments and operand widths. These are the
// unit-level counterpart of the dverify backend oracle (which checks
// whole fuzzed designs end to end).

import (
	"math/rand"
	"testing"
)

// opTestNetlist builds a synthetic netlist with nets of the given widths.
func opTestNetlist(widths ...int) *Netlist {
	nl := &Netlist{Name: "optest", byName: map[string]int{}}
	for i, w := range widths {
		n := &Net{Name: string(rune('a' + i)), Index: i, Width: w}
		nl.byName[n.Name] = i
		nl.Nets = append(nl.Nets, n)
	}
	return nl
}

// randomEnv fills an environment with width-masked random values.
func randomEnv(nl *Netlist, rng *rand.Rand) []uint64 {
	env := make([]uint64, len(nl.Nets))
	for i, n := range nl.Nets {
		env[i] = rng.Uint64() & n.Mask()
	}
	return env
}

// compileExpr lowers one expression to a standalone program fragment.
func compileExpr(nl *Netlist, e *EExpr) (*Program, int32) {
	b := NewProgBuilder(len(nl.Nets))
	c := &netCompiler{b: b, nl: nl}
	slot := c.expr(e)
	p := b.Build()
	p.CombEnd = len(p.Code)
	return p, slot
}

// evalCompiled runs the fragment over env and returns the result slot.
func evalCompiled(p *Program, slot int32, env []uint64) uint64 {
	m := NewMachine(p)
	copy(m.Frame, env)
	m.Exec(0, len(p.Code), nil)
	return m.Frame[slot]
}

func netRef(nl *Netlist, idx int) *EExpr {
	return &EExpr{Op: OpNet, Net: idx, W: nl.Nets[idx].Width}
}

func constOf(v uint64, w int) *EExpr {
	return &EExpr{Op: OpConst, Val: v & WidthMask(w), W: w}
}

// TestCompiledExprOps cross-checks every expression opcode against the
// interpreter over randomized widths and environments.
func TestCompiledExprOps(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const rounds = 200

	// randOperand yields a leaf: a net read, a constant, or a nested
	// unary to exercise temp allocation.
	randOperand := func(nl *Netlist, w int) *EExpr {
		switch rng.Intn(3) {
		case 0:
			return constOf(rng.Uint64(), w)
		case 1:
			idx := rng.Intn(len(nl.Nets))
			n := nl.Nets[idx]
			if n.Width == w {
				return netRef(nl, idx)
			}
			// Width-adjust through a part select or concat-free mask.
			if n.Width > w {
				return &EExpr{Op: OpPart, Net: idx, Lo: 0, W: w}
			}
			return constOf(rng.Uint64(), w)
		default:
			return &EExpr{Op: OpNot, A: constOf(rng.Uint64(), w), W: w}
		}
	}

	unaryOps := []EOp{OpNot, OpLogNot, OpNeg, OpRedAnd, OpRedOr, OpRedXor, OpRedNand, OpRedNor, OpRedXnor}
	binaryOps := []EOp{OpAdd, OpSub, OpMul, OpDiv, OpMod, OpPow, OpAnd, OpOr, OpXor, OpXnor,
		OpLogAnd, OpLogOr, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpShl, OpShr}

	for round := 0; round < rounds; round++ {
		widths := []int{1 + rng.Intn(64), 1 + rng.Intn(64), 1 + rng.Intn(16), 64}
		nl := opTestNetlist(widths...)
		env := randomEnv(nl, rng)
		w := 1 + rng.Intn(64)

		var exprs []*EExpr
		for _, op := range unaryOps {
			resW := w
			switch op {
			case OpLogNot, OpRedAnd, OpRedOr, OpRedXor, OpRedNand, OpRedNor, OpRedXnor:
				resW = 1
			}
			exprs = append(exprs, &EExpr{Op: op, A: randOperand(nl, w), W: resW})
		}
		for _, op := range binaryOps {
			resW := w
			switch op {
			case OpLogAnd, OpLogOr, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
				resW = 1
			}
			bw := w
			if op == OpShl || op == OpShr {
				bw = 7 // shift amounts: small but can exceed 64
			}
			exprs = append(exprs, &EExpr{Op: op, A: randOperand(nl, w), B: randOperand(nl, bw), W: resW})
		}
		// Structural forms.
		exprs = append(exprs,
			constOf(rng.Uint64(), w),
			netRef(nl, rng.Intn(len(nl.Nets))),
			&EExpr{Op: OpIndex, Net: 3, A: randOperand(nl, 7), W: 1},
			&EExpr{Op: OpPart, Net: 3, Lo: rng.Intn(32), W: 1 + rng.Intn(16)},
			&EExpr{Op: OpTernary, A: randOperand(nl, 1), B: randOperand(nl, w), C: randOperand(nl, w), W: w},
			&EExpr{Op: OpConcat, Parts: []*EExpr{randOperand(nl, 9), randOperand(nl, 3), randOperand(nl, 20)}, W: 32},
			// Nested tree mixing several ops.
			&EExpr{Op: OpAdd, W: w,
				A: &EExpr{Op: OpTernary, A: netRef(nl, 2), B: randOperand(nl, w), C: randOperand(nl, w), W: w},
				B: &EExpr{Op: OpMul, A: randOperand(nl, w), B: randOperand(nl, w), W: w}},
		)

		for _, e := range exprs {
			p, slot := compileExpr(nl, e)
			got := evalCompiled(p, slot, env)
			want := e.Eval(env)
			if got != want {
				t.Fatalf("round %d op %d (width %d): compiled=%#x interpreted=%#x", round, e.Op, e.W, got, want)
			}
		}
	}
}

// compileStmts lowers a statement list as a seq-style process body.
func compileStmts(nl *Netlist, stmts ...*EStmt) *Program {
	b := NewProgBuilder(len(nl.Nets))
	c := &netCompiler{b: b, nl: nl}
	for _, s := range stmts {
		c.stmt(s)
	}
	p := b.Build()
	p.SeqEnd = len(p.Code)
	return p
}

// runBoth executes the statements on both backends from the same starting
// environment and returns (interpEnv, compiledEnv) after NB commit.
func runBoth(nl *Netlist, env []uint64, stmts ...*EStmt) ([]uint64, []uint64) {
	ienv := append([]uint64(nil), env...)
	var nba []NBWrite
	for _, s := range stmts {
		ExecStmt(s, nl.Nets, ienv, &nba)
	}
	for _, w := range nba {
		w.Apply(ienv)
	}

	p := compileStmts(nl, stmts...)
	m := NewMachine(p)
	copy(m.Frame, env)
	m.Exec(0, len(p.Code), nil)
	m.CommitNBA()
	return ienv, m.Frame[:len(nl.Nets)]
}

func checkSame(t *testing.T, label string, nl *Netlist, ienv, cenv []uint64) {
	t.Helper()
	for i := range ienv {
		if ienv[i] != cenv[i] {
			t.Fatalf("%s: net %s interp=%#x compiled=%#x", label, nl.Nets[i].Name, ienv[i], cenv[i])
		}
	}
}

// TestCompiledStmtForms cross-checks every statement form (blocking and
// non-blocking assigns over whole/part/bit/concat LHS, if/else, case with
// exact and masked labels, nested blocks) against the interpreter.
func TestCompiledStmtForms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const rounds = 300

	for round := 0; round < rounds; round++ {
		nl := opTestNetlist(8, 16, 4, 1, 32)
		env := randomEnv(nl, rng)
		rv := func(w int) *EExpr { return constOf(rng.Uint64(), w) }

		wholeRef := func(net int) LRef { return LRef{Net: net, W: nl.Nets[net].Width} }
		partRef := func(net, lo, w int) LRef { return LRef{Net: net, IsPart: true, Lo: lo, W: w} }
		bitRef := func(net int, idx *EExpr) LRef { return LRef{Net: net, IsBit: true, BitIdx: idx, W: 1} }

		blocking := rng.Intn(2) == 0
		stmts := []*EStmt{
			// Whole-net assign.
			{Op: SAssign, LHS: []LRef{wholeRef(0)}, RHS: rv(8), Blocking: blocking},
			// Static part assign.
			{Op: SAssign, LHS: []LRef{partRef(1, rng.Intn(8), 1+rng.Intn(8))}, RHS: rv(16), Blocking: blocking},
			// Dynamic bit assign, sometimes out of range.
			{Op: SAssign, LHS: []LRef{bitRef(1, rv(6))}, RHS: rv(1), Blocking: blocking},
			// Concatenated LHS across three nets.
			{Op: SAssign, LHS: []LRef{wholeRef(2), partRef(4, 3, 5), wholeRef(3)}, RHS: rv(10), Blocking: blocking},
			// If/else with nested block.
			{Op: SIf, Cond: rv(1),
				Then: &EStmt{Op: SBlock, Stmts: []*EStmt{
					{Op: SAssign, LHS: []LRef{wholeRef(4)}, RHS: rv(32), Blocking: true},
					{Op: SAssign, LHS: []LRef{wholeRef(0)}, RHS: netRefExpr(nl, 4), Blocking: blocking},
				}},
				Else: &EStmt{Op: SAssign, LHS: []LRef{wholeRef(4)}, RHS: rv(32), Blocking: blocking}},
			// If without else.
			{Op: SIf, Cond: rv(1), Then: &EStmt{Op: SAssign, LHS: []LRef{wholeRef(3)}, RHS: rv(1), Blocking: blocking}},
		}

		// Case with exact labels (labelMap path) and one with masked
		// (casez-style) labels, plus a default.
		exact := &EStmt{Op: SCase, Subject: netRef(nl, 2),
			Labels: [][]caseLabel{
				{{value: 0, mask: ^uint64(0)}, {value: 1, mask: ^uint64(0)}},
				{{value: 2, mask: ^uint64(0)}},
			},
			Arms: []*EStmt{
				{Op: SAssign, LHS: []LRef{wholeRef(0)}, RHS: rv(8), Blocking: blocking},
				{Op: SAssign, LHS: []LRef{wholeRef(0)}, RHS: rv(8), Blocking: blocking},
			},
			Default: &EStmt{Op: SAssign, LHS: []LRef{wholeRef(0)}, RHS: rv(8), Blocking: blocking},
		}
		exact.labelMap = map[uint64]int{0: 0, 1: 0, 2: 1}
		masked := &EStmt{Op: SCase, Subject: netRef(nl, 2),
			Labels: [][]caseLabel{
				{{value: uint64(rng.Intn(16)), mask: 0b1100}},
				{{value: uint64(rng.Intn(16)), mask: 0b0011}},
			},
			Arms: []*EStmt{
				{Op: SAssign, LHS: []LRef{wholeRef(1)}, RHS: rv(16), Blocking: blocking},
				{Op: SAssign, LHS: []LRef{wholeRef(1)}, RHS: rv(16), Blocking: blocking},
			},
		}
		noDefault := &EStmt{Op: SCase, Subject: rv(4),
			Labels: [][]caseLabel{{{value: 15, mask: ^uint64(0)}}},
			Arms:   []*EStmt{{Op: SAssign, LHS: []LRef{wholeRef(3)}, RHS: rv(1), Blocking: blocking}},
		}
		stmts = append(stmts, exact, masked, noDefault)

		ienv, cenv := runBoth(nl, env, stmts...)
		checkSame(t, "stmt forms", nl, ienv, cenv)
	}
}

func netRefExpr(nl *Netlist, idx int) *EExpr { return netRef(nl, idx) }

// TestCompiledNBOrdering checks that non-blocking writes commit in the
// same order on both backends (later writes win on overlap).
func TestCompiledNBOrdering(t *testing.T) {
	nl := opTestNetlist(8)
	env := make([]uint64, 1)
	s1 := &EStmt{Op: SAssign, LHS: []LRef{{Net: 0, W: 8}}, RHS: constOf(0xAA, 8)}
	s2 := &EStmt{Op: SAssign, LHS: []LRef{{Net: 0, IsPart: true, Lo: 0, W: 4}}, RHS: constOf(0x5, 4)}
	ienv, cenv := runBoth(nl, env, s1, s2)
	checkSame(t, "nb ordering", nl, ienv, cenv)
	if ienv[0] != 0xA5 {
		t.Fatalf("nb overlap result = %#x, want 0xA5", ienv[0])
	}
}
