// Package faultinject is the deterministic fault-injection harness for
// the evaluation runner: reproducible failure plans — panic on design
// N, transient errors on the first K attempts of a job, slow-design
// delays — installed through eval.FaultHook, the worker-loop seam in
// astore.LoadHook's lineage. A plan's decisions are a pure function of
// (design index, attempt number): no wall clock, no shared RNG, so a
// run under injected faults is exactly as reproducible as a healthy
// one. That purity is what lets dverify oracle 11 demand that a
// faulted run under retries+continue+resume converge field-for-field
// to the fault-free sequential stream, and what makes a chaos CLI run
// (`abench -inject "error:2:2"`) repeatable enough to debug.
package faultinject

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"assertionbench/internal/eval"
	"assertionbench/internal/faults"
)

// Fault modes.
const (
	// ModePanic panics the attempt. The panic value is a transient error
	// (faults.Transient), so a bounded injection (Attempts > 0) is
	// absorbed by the runner's retries while an unbounded one exhausts
	// them and surfaces through the error policy.
	ModePanic = "panic"
	// ModeError fails the attempt with a transient error return.
	ModeError = "error"
	// ModeDelay sleeps before the attempt proceeds — a slow design, not
	// a failure; it exercises the reorder buffer and backoff paths.
	ModeDelay = "delay"
)

// Fault is one injection rule, matched by global corpus index.
type Fault struct {
	// Index is the global corpus index of the design the fault targets.
	Index int
	// Mode is ModePanic, ModeError or ModeDelay.
	Mode string
	// Attempts caps the injection to the first N attempts of the job;
	// 0 injects on every attempt (a permanent fault).
	Attempts int
	// Delay is ModeDelay's sleep (defaults to 1ms when unset).
	Delay time.Duration
}

// Plan is an ordered set of injection rules. Rules are evaluated in
// order per attempt; the first panic/error rule that matches decides
// the attempt (delay rules always apply).
type Plan struct {
	Faults []Fault
}

// Hook compiles the plan into an eval.FaultHook-compatible function.
// The returned hook is stateless: whether attempt A of design I faults
// depends only on (I, A), never on call history, so concurrent workers
// and resumed runs see identical behavior.
func (p Plan) Hook() func(design string, index, attempt int) error {
	return func(design string, index, attempt int) error {
		for _, f := range p.Faults {
			if f.Index != index || (f.Attempts > 0 && attempt > f.Attempts) {
				continue
			}
			switch f.Mode {
			case ModePanic:
				panic(faults.Transientf("faultinject: panic on design %s (#%d, attempt %d)", design, index, attempt))
			case ModeError:
				return faults.Transientf("faultinject: transient error on design %s (#%d, attempt %d)", design, index, attempt)
			case ModeDelay:
				time.Sleep(f.Delay)
			}
		}
		return nil
	}
}

// Install sets the plan as the process-wide eval.FaultHook and returns
// a restorer for the previous hook. Installs are not synchronized;
// tests and the CLI chaos path install one plan at a time.
func (p Plan) Install() (restore func()) {
	prev := eval.FaultHook
	if len(p.Faults) == 0 {
		eval.FaultHook = nil
	} else {
		eval.FaultHook = p.Hook()
	}
	return func() { eval.FaultHook = prev }
}

// ParseSpec parses the CLI fault grammar: a comma-separated list of
// mode:index[:attempts[:delay]] rules — e.g. "panic:0" (permanent
// panic on design 0), "error:2:2" (transient error on the first two
// attempts of design 2), "delay:1:0:5ms" (5ms sleep on every attempt
// of design 1). An empty spec parses to the empty plan.
func ParseSpec(s string) (Plan, error) {
	var p Plan
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	for _, item := range strings.Split(s, ",") {
		parts := strings.Split(strings.TrimSpace(item), ":")
		if len(parts) < 2 || len(parts) > 4 {
			return Plan{}, fmt.Errorf("faultinject: bad fault %q (want mode:index[:attempts[:delay]])", item)
		}
		f := Fault{Mode: parts[0]}
		switch f.Mode {
		case ModePanic, ModeError, ModeDelay:
		default:
			return Plan{}, fmt.Errorf("faultinject: unknown mode %q (want %s, %s or %s)", parts[0], ModePanic, ModeError, ModeDelay)
		}
		idx, err := strconv.Atoi(parts[1])
		if err != nil || idx < 0 {
			return Plan{}, fmt.Errorf("faultinject: bad design index %q in %q", parts[1], item)
		}
		f.Index = idx
		if len(parts) >= 3 {
			n, err := strconv.Atoi(parts[2])
			if err != nil || n < 0 {
				return Plan{}, fmt.Errorf("faultinject: bad attempt cap %q in %q", parts[2], item)
			}
			f.Attempts = n
		}
		if len(parts) == 4 {
			d, err := time.ParseDuration(parts[3])
			if err != nil || d < 0 {
				return Plan{}, fmt.Errorf("faultinject: bad delay %q in %q", parts[3], item)
			}
			f.Delay = d
		}
		if f.Mode == ModeDelay && f.Delay == 0 {
			f.Delay = time.Millisecond
		}
		p.Faults = append(p.Faults, f)
	}
	return p, nil
}
