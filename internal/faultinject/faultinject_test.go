package faultinject

import (
	"strings"
	"testing"
	"time"

	"assertionbench/internal/eval"
	"assertionbench/internal/faults"
)

func TestHookErrorBoundedByAttempts(t *testing.T) {
	hook := Plan{Faults: []Fault{{Index: 3, Mode: ModeError, Attempts: 2}}}.Hook()
	for attempt := 1; attempt <= 4; attempt++ {
		err := hook("d3", 3, attempt)
		if attempt <= 2 {
			if err == nil {
				t.Fatalf("attempt %d: no injected error", attempt)
			}
			if !faults.IsTransient(err) {
				t.Errorf("attempt %d: injected error not transient: %v", attempt, err)
			}
		} else if err != nil {
			t.Errorf("attempt %d: fault injected past its cap: %v", attempt, err)
		}
	}
	if err := hook("d0", 0, 1); err != nil {
		t.Errorf("untargeted design faulted: %v", err)
	}
}

func TestHookPanicIsTransient(t *testing.T) {
	hook := Plan{Faults: []Fault{{Index: 0, Mode: ModePanic}}}.Hook()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic rule did not panic")
		}
		err, ok := r.(error)
		if !ok || !faults.IsTransient(err) {
			t.Errorf("panic value %v is not a transient error", r)
		}
	}()
	hook("d0", 0, 1)
}

func TestHookDelayIsNotAFailure(t *testing.T) {
	hook := Plan{Faults: []Fault{{Index: 1, Mode: ModeDelay, Delay: time.Millisecond}}}.Hook()
	if err := hook("d1", 1, 1); err != nil {
		t.Errorf("delay rule returned an error: %v", err)
	}
}

func TestHookIsStateless(t *testing.T) {
	hook := Plan{Faults: []Fault{{Index: 2, Mode: ModeError, Attempts: 1}}}.Hook()
	// The same (index, attempt) must decide the same way regardless of
	// call history — the determinism oracle depends on it.
	for i := 0; i < 3; i++ {
		if hook("d2", 2, 1) == nil {
			t.Fatalf("call %d: first-attempt fault not re-injected", i)
		}
		if hook("d2", 2, 2) != nil {
			t.Fatalf("call %d: second attempt faulted", i)
		}
	}
}

func TestInstallRestore(t *testing.T) {
	if eval.FaultHook != nil {
		t.Fatal("FaultHook already set")
	}
	restore := Plan{Faults: []Fault{{Index: 0, Mode: ModeError}}}.Install()
	if eval.FaultHook == nil {
		t.Fatal("Install did not set the hook")
	}
	restore()
	if eval.FaultHook != nil {
		t.Fatal("restore did not clear the hook")
	}
	// An empty plan installs no hook at all.
	restore = Plan{}.Install()
	if eval.FaultHook != nil {
		t.Fatal("empty plan installed a hook")
	}
	restore()
}

func TestParseSpec(t *testing.T) {
	p, err := ParseSpec("panic:0, error:2:2, delay:1:0:5ms")
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{
		{Index: 0, Mode: ModePanic},
		{Index: 2, Mode: ModeError, Attempts: 2},
		{Index: 1, Mode: ModeDelay, Delay: 5 * time.Millisecond},
	}
	if len(p.Faults) != len(want) {
		t.Fatalf("parsed %d faults, want %d", len(p.Faults), len(want))
	}
	for i, f := range p.Faults {
		if f != want[i] {
			t.Errorf("fault %d = %+v, want %+v", i, f, want[i])
		}
	}
	if p, err := ParseSpec("  "); err != nil || len(p.Faults) != 0 {
		t.Errorf("blank spec: %+v, %v", p, err)
	}
	if p, err := ParseSpec("delay:1"); err != nil || p.Faults[0].Delay != time.Millisecond {
		t.Errorf("default delay: %+v, %v", p, err)
	}
	for _, bad := range []string{"panic", "explode:1", "panic:x", "panic:-1", "error:1:x", "error:1:-2", "delay:1:0:xs", "delay:1:0:-1ms", "panic:1:2:3ms:4"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		} else if !strings.Contains(err.Error(), "faultinject:") {
			t.Errorf("ParseSpec(%q) error %v lacks package prefix", bad, err)
		}
	}
}
