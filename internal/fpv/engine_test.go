package fpv

import (
	"context"
	"testing"

	"assertionbench/internal/verilog"
)

const counterSrc = `
module counter(clk, rst, en, count);
input clk, rst, en;
output [3:0] count;
reg [3:0] count;
always @(posedge clk or posedge rst)
  if (rst) count <= 4'b0;
  else if (en) count <= count + 1;
endmodule
`

const arbiterSrc = `
module arb2(clk, rst, req1, req2, gnt1, gnt2);
input clk, rst, req1, req2;
output gnt1, gnt2;
reg gnt_, gnt1, gnt2;
always @(posedge clk or posedge rst)
  if (rst) gnt_ <= 0;
  else gnt_ <= gnt1;
always @(*)
  if (gnt_) begin
    gnt1 = req1 & req2;
    gnt2 = req2;
  end else begin
    gnt1 = req1;
    gnt2 = req2 & ~req1;
  end
endmodule
`

func elab(t *testing.T, src, top string) *verilog.Netlist {
	t.Helper()
	nl, err := verilog.ElaborateSource(src, top)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return nl
}

func verify(t *testing.T, nl *verilog.Netlist, prop string) Result {
	t.Helper()
	return VerifySource(context.Background(), nl, prop, Options{})
}

func TestCounterProvenProperties(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	proven := []string{
		"rst == 1 |=> count == 0",
		"en == 1 && rst == 0 && count < 15 |=> count == $past(count) + 1",
		"en == 0 && rst == 0 |=> $stable(count)",
		"$rose(rst) |=> count == 0",
		"rst == 1 ##1 rst == 1 |-> count == 0",
	}
	for _, p := range proven {
		r := verify(t, nl, p)
		if r.Status != StatusProven {
			t.Errorf("%q: status %v (err=%v), want proven", p, r.Status, r.Err)
			if r.CEX != nil {
				t.Logf("CEX:\n%s", r.CEX.Format(nl))
			}
		}
		if !r.Exhaustive {
			t.Errorf("%q: counter should be exhaustively checkable", p)
		}
	}
}

func TestCounterCEXProperties(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	failing := []string{
		"en == 1 |=> count == 0",
		"rst == 0 |=> $stable(count)",
		"count == 3 |-> en == 1",
	}
	for _, p := range failing {
		r := verify(t, nl, p)
		if r.Status != StatusCEX {
			t.Errorf("%q: status %v, want cex", p, r.Status)
			continue
		}
		if r.CEX == nil || len(r.CEX.Sampled) == 0 {
			t.Errorf("%q: missing counter-example trace", p)
		}
	}
}

func TestCounterVacuous(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	r := verify(t, nl, "count == 500 |-> en == 1")
	if r.Status != StatusVacuous {
		t.Fatalf("unreachable antecedent: status %v, want vacuous", r.Status)
	}
	if r.NonVacuous {
		t.Error("NonVacuous flag set for vacuous property")
	}
}

func TestCounterErrors(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	for _, p := range []string{
		"foo == 1 |-> count == 0", // unknown signal
		"count == |-> en",         // syntax error
		"count $$ 1 |-> en",       // garbage
	} {
		r := verify(t, nl, p)
		if r.Status != StatusError {
			t.Errorf("%q: status %v, want error", p, r.Status)
		}
		if r.Err == nil {
			t.Errorf("%q: missing error detail", p)
		}
	}
}

// TestArbiterPaperProperties checks the Sec. II-A example properties
// against the Fig. 1 arbiter. P2 produces a CEX exactly as the paper
// reports. For P1, the paper's prose says "valid", but the Fig. 1 RTL as
// printed grants gnt1 = req1 & req2 when gnt_ is set, so req1=1/req2=0
// with gnt_=1 (reachable in two cycles) refutes it; the engine correctly
// finds that trace. EXPERIMENTS.md records this discrepancy of the paper's
// toy example.
func TestArbiterPaperProperties(t *testing.T) {
	nl := elab(t, arbiterSrc, "arb2")

	p2 := "G((req2 == 0 && gnt_ == 1) && X(req1 == 1) -> X(X(gnt1 == 1)))"
	r2 := verify(t, nl, p2)
	if r2.Status != StatusCEX {
		t.Errorf("P2: status %v, want cex (as the paper reports)", r2.Status)
	}

	p1 := "G((req1 == 1 && req2 == 0) -> (gnt1 == 1))"
	r1 := verify(t, nl, p1)
	if r1.Status != StatusCEX {
		t.Errorf("P1 on the literal Fig. 1 RTL: status %v, want cex", r1.Status)
	}

	// The variant the paper's prose is consistent with: while the arbiter
	// has not granted port 1 (gnt_ low), a sole req1 wins immediately.
	p1fixed := "gnt_ == 0 && req1 == 1 && req2 == 0 |-> gnt1 == 1"
	rf := verify(t, nl, p1fixed)
	if rf.Status != StatusProven {
		t.Errorf("qualified P1: status %v, want proven", rf.Status)
	}
}

func TestArbiterProvenProperties(t *testing.T) {
	nl := elab(t, arbiterSrc, "arb2")
	proven := []string{
		"gnt_ == 0 |-> gnt2 == (req2 && !req1)",
		"rst == 1 |=> gnt_ == 0",
		"req2 == 0 |-> gnt2 == 0",
	}
	for _, p := range proven {
		r := verify(t, nl, p)
		if r.Status != StatusProven {
			t.Errorf("%q: status %v, want proven", p, r.Status)
		}
	}
}

func TestShiftRegisterDelays(t *testing.T) {
	src := `
module shreg(clk, d, q);
input clk, d;
output q;
reg [2:0] r;
always @(posedge clk) r <= {r[1:0], d};
assign q = r[2];
endmodule
`
	nl := elab(t, src, "shreg")
	r := verify(t, nl, "d == 1 |-> ##3 q == 1")
	if r.Status != StatusProven {
		t.Fatalf("##3 pipeline property: %v, want proven", r.Status)
	}
	r = verify(t, nl, "d == 1 |-> ##2 q == 1")
	if r.Status != StatusCEX {
		t.Fatalf("##2 pipeline property: %v, want cex", r.Status)
	}
	r = verify(t, nl, "d == 1 ##1 d == 1 ##1 d == 1 |-> ##1 q == 1 ##1 q == 1")
	if r.Status != StatusProven {
		t.Fatalf("burst property: %v, want proven", r.Status)
	}
}

func TestBoundedModeWideInputs(t *testing.T) {
	src := `
module adder(input [15:0] a, input [15:0] b, output [16:0] sum);
  assign sum = a + b;
endmodule
`
	nl := elab(t, src, "adder")
	if nl.InputBits() <= 12 {
		t.Fatal("test premise: adder must exceed MaxInputBits")
	}
	r := verify(t, nl, "1 |-> sum == a + b")
	if r.Status != StatusBoundedPass {
		t.Fatalf("wide-input true property: %v, want bounded_pass", r.Status)
	}
	if r.Exhaustive {
		t.Error("wide-input verification must not claim exhaustiveness")
	}
	r = verify(t, nl, "1 |-> sum == a - b")
	if r.Status != StatusCEX {
		t.Fatalf("wide-input false property: %v, want cex", r.Status)
	}
}

func TestCEXReplayIsFaithful(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	r := verify(t, nl, "en == 1 |=> count == 0")
	if r.Status != StatusCEX {
		t.Fatalf("expected cex, got %v", r.Status)
	}
	cex := r.CEX
	if len(cex.Sampled) != len(cex.Inputs) {
		t.Fatalf("trace/input length mismatch: %d vs %d", len(cex.Sampled), len(cex.Inputs))
	}
	// The violation cycle must show en sampled 1 one cycle earlier and a
	// non-zero count at the violation point.
	en := nl.NetIndex("en")
	count := nl.NetIndex("count")
	v := cex.ViolationCycle
	if v < 1 {
		t.Fatalf("violation cycle %d too early", v)
	}
	if cex.Sampled[v-1][en] != 1 {
		t.Error("antecedent (en=1) not visible in CEX at violation-1")
	}
	if cex.Sampled[v][count] == 0 {
		t.Error("consequent violation (count != 0) not visible in CEX")
	}
}

func TestVerifyAllBatch(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	results := VerifyAll(context.Background(), nl, []string{
		"rst == 1 |=> count == 0",
		"en == 1 |=> count == 0",
		"nosuch == 1 |-> en == 1",
	}, Options{})
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	want := []Status{StatusProven, StatusCEX, StatusError}
	for i, w := range want {
		if results[i].Status != w {
			t.Errorf("result %d = %v, want %v", i, results[i].Status, w)
		}
	}
}

func TestStatusHelpers(t *testing.T) {
	if !StatusProven.IsPass() || !StatusVacuous.IsPass() || !StatusBoundedPass.IsPass() {
		t.Error("proven/vacuous/bounded must count as Pass")
	}
	if StatusCEX.IsPass() || StatusError.IsPass() {
		t.Error("cex/error must not count as Pass")
	}
	for s := StatusProven; s <= StatusError; s++ {
		if s.String() == "" {
			t.Errorf("missing String for %d", int(s))
		}
	}
}

// TestEngineReuseMatchesFresh drives one pooled engine across interleaved
// netlists and assertions (including a bounded design forcing the random
// hunt) and checks every verdict against a fresh engine's.
func TestEngineReuseMatchesFresh(t *testing.T) {
	counter := elab(t, counterSrc, "counter")
	arbiter := elab(t, arbiterSrc, "arb2")
	cases := []struct {
		nl  *verilog.Netlist
		src string
	}{
		{counter, "rst == 1 |=> count == 0"},
		{arbiter, "rst == 1 |=> gnt_ == 0"},
		{counter, "en == 1 |=> count == 1"}, // refutable
		{arbiter, "req1 == 1 && req2 == 0 |-> gnt1 == 1"},
		{counter, "count == 15 |-> en == 1"},
		{counter, "rst == 1 |=> count == 0"}, // repeat after other designs
	}
	opt := Options{MaxProductStates: 400, MaxInputSamples: 6, RandomRuns: 8, RandomDepth: 24, Seed: 9}
	pooled := NewEngine()
	for i, tc := range cases {
		got := pooled.VerifySource(context.Background(), tc.nl, tc.src, opt)
		want := VerifySource(context.Background(), tc.nl, tc.src, opt)
		if got.Status != want.Status || got.States != want.States ||
			got.Depth != want.Depth || got.NonVacuous != want.NonVacuous ||
			got.Exhaustive != want.Exhaustive {
			t.Errorf("case %d (%s): pooled engine %+v, fresh engine %+v", i, tc.src, got, want)
		}
	}
}
