package fpv

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"assertionbench/internal/sim"
	"assertionbench/internal/sva"
	"assertionbench/internal/verilog"
)

// randAssertion builds a random assertion over the counter's signals.
func randAssertion(rng *rand.Rand) string {
	sigs := []struct {
		name  string
		width int
	}{{"rst", 1}, {"en", 1}, {"count", 4}}
	atom := func() string {
		s := sigs[rng.Intn(len(sigs))]
		op := []string{"==", "!=", "<", ">="}[rng.Intn(4)]
		return fmt.Sprintf("%s %s %d", s.name, op, rng.Intn(1<<uint(s.width)))
	}
	ante := atom()
	if rng.Intn(2) == 0 {
		ante += " && " + atom()
	}
	if rng.Intn(3) == 0 {
		ante += fmt.Sprintf(" ##%d %s", 1+rng.Intn(2), atom())
	}
	impl := []string{"|->", "|=>"}[rng.Intn(2)]
	cons := atom()
	if rng.Intn(4) == 0 {
		cons = fmt.Sprintf("$stable(count)")
	}
	return fmt.Sprintf("%s %s %s", ante, impl, cons)
}

// TestProvenNeverViolatedOnTraces is the engine's soundness property: any
// assertion the model checker proves exhaustively must never be violated
// by the trace monitor on random simulations of the same design.
func TestProvenNeverViolatedOnTraces(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	rng := rand.New(rand.NewSource(11))
	proven, cexs := 0, 0
	for i := 0; i < 200; i++ {
		src := randAssertion(rng)
		a, err := sva.Parse(src)
		if err != nil {
			t.Fatalf("generator produced unparseable %q: %v", src, err)
		}
		r := Verify(context.Background(), nl, a, Options{})
		switch r.Status {
		case StatusProven, StatusVacuous:
			proven++
			for seed := int64(0); seed < 3; seed++ {
				tr, err := sim.RandomTrace(nl, 300, 2, 100+seed)
				if err != nil {
					t.Fatal(err)
				}
				viol, _, err := CheckTrace(nl, a, tr)
				if err != nil {
					t.Fatal(err)
				}
				if len(viol) > 0 {
					t.Fatalf("UNSOUND: %q proven by FPV but violated on trace (seed %d, cycle %d)",
						src, seed, viol[0].ViolationCycle)
				}
			}
		case StatusCEX:
			cexs++
		}
	}
	if proven == 0 || cexs == 0 {
		t.Fatalf("degenerate sample: %d proven, %d cex out of 200", proven, cexs)
	}
}

// TestCEXTraceActuallyViolates: every counter-example the engine emits
// must itself violate the assertion when monitored.
func TestCEXTraceActuallyViolates(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	rng := rand.New(rand.NewSource(23))
	checked := 0
	for i := 0; i < 120 && checked < 25; i++ {
		src := randAssertion(rng)
		a, err := sva.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		r := Verify(context.Background(), nl, a, Options{})
		if r.Status != StatusCEX {
			continue
		}
		checked++
		tr := &sim.Trace{Netlist: nl, Cycles: r.CEX.Sampled}
		viol, _, err := CheckTrace(nl, a, tr)
		if err != nil {
			t.Fatal(err)
		}
		if len(viol) == 0 {
			t.Errorf("CEX for %q does not violate the assertion when replayed", src)
		}
	}
	if checked < 5 {
		t.Fatalf("only %d CEX assertions sampled", checked)
	}
}

// TestVerifyDeterministic: verification is a pure function of its inputs.
func TestVerifyDeterministic(t *testing.T) {
	nl := elab(t, arbiterSrc, "arb2")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := ""
		switch rng.Intn(3) {
		case 0:
			src = "req1 == 1 |-> gnt1 == 1"
		case 1:
			src = "rst == 1 |=> gnt_ == 0"
		default:
			src = "gnt_ == 1 ##1 req2 == 1 |=> gnt2 == 1"
		}
		a := VerifySource(context.Background(), nl, src, Options{Seed: seed%7 + 1})
		b := VerifySource(context.Background(), nl, src, Options{Seed: seed%7 + 1})
		return a.Status == b.Status && a.States == b.States
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestMonitorWindowMaskInvariant: the alive mask never exceeds the window.
func TestMonitorWindowMaskInvariant(t *testing.T) {
	f := func(w uint8) bool {
		window := int(w%64) + 1
		mask := verilog.WidthMask(window)
		alive := uint64(0)
		for i := 0; i < 200; i++ {
			alive = ((alive << 1) | 1) & mask
			if alive&^mask != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
