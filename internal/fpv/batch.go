package fpv

import (
	"context"
	"fmt"

	"assertionbench/internal/sva"
	"assertionbench/internal/verilog"
)

// The batched verification path: all properties of one design share a
// single demand-driven reachability exploration (graph.go) instead of
// re-simulating the design's state space once per assertion. Each
// property runs a monitor-only product BFS over the graph (expanding
// nodes on first use), and — in bounded mode — the unresolved remainder
// of the batch steps over one shared random-hunt trace, simulated run by
// run as consumed. Verdicts are bit-identical to the per-property
// reference search, field for field including CEX stimulus (dverify
// oracle 5 enforces this); only the work is amortized.

// gnode is one product state of the batched search: a graph node times
// the monitor state, plus the sampled-history window its property reads
// (rows are graph-owned union rows, most recent first).
type gnode struct {
	node   int32
	alive  uint64
	sat    uint64
	parent int32
	edge   int32 // graph edge taken into this state (-1 at the root)
	depth  int32
	hist   [][]uint64
}

// batchState carries one VerifyBatch call's exploration: the graph and
// hunt trace in use, whether they are private clones (extendable) or
// still the cache's immutable copies, and whether anything grew and so
// is worth republishing.
type batchState struct {
	key     graphKey
	g       *Graph
	ht      *HuntTrace
	gOwned  bool
	htOwned bool
	dirty   bool
	// failed marks an exploration that hit an engine error; it must not
	// be republished.
	failed bool
}

// VerifyBatch model-checks a batch of compiled assertions against the
// netlist with one shared design-state exploration per cone of influence,
// returning one result per input in order. Results are identical to
// calling VerifyCompiled per assertion with the same Options.
// Cancellation marks every undecided result StatusError with ctx.Err();
// an expired ctx deadline marks them StatusUnknown instead — the
// budgeted anytime early-out (see ctxResult).
//
// With cone reduction on (the default) the batch is partitioned by each
// property's canonical cone pointer (verilog.Cone is interned per
// closure): properties sharing a closure share one reduced design, one
// reachability graph and one hunt trace, so the shared exploration is
// built per cone rather than per full design — and since the graph cache
// keys on the engine's bound netlist pointer, cone-reduced graphs get
// their own (smaller, correctly charged) cache entries for free.
func (e *Engine) VerifyBatch(ctx context.Context, nl *verilog.Netlist, cs []*sva.Compiled, opt Options) []Result {
	out := make([]Result, len(cs))
	opt = opt.withDefaults()
	fill := func(from int, r Result) []Result {
		for i := from; i < len(out); i++ {
			out[i] = r
		}
		return out
	}
	fail := func(from int, err error) []Result {
		return fill(from, Result{Status: StatusError, Err: err})
	}
	if opt.Backend != BackendCompiled && opt.Backend != BackendInterp {
		return fail(0, fmt.Errorf("fpv: unknown backend %q", opt.Backend))
	}
	if opt.Cone != ConeAuto && opt.Cone != ConeOff {
		return fail(0, fmt.Errorf("fpv: unknown cone mode %q", opt.Cone))
	}
	if opt.Slices != SlicesAuto && opt.Slices != SlicesOff {
		return fail(0, fmt.Errorf("fpv: unknown slices mode %q", opt.Slices))
	}
	if opt.Static != StaticAuto && opt.Static != StaticOff {
		return fail(0, fmt.Errorf("fpv: unknown static mode %q", opt.Static))
	}
	if err := ctx.Err(); err != nil {
		return fill(0, ctxResult(err))
	}
	if len(cs) == 0 {
		return out
	}
	// Partition by canonical cone (identity cones fold into the nil/full
	// group), preserving first-appearance order for determinism.
	// Statically discharged properties never join a group: their verdicts
	// come straight from the fixpoint, identical to what VerifyCompiled
	// returns for the same options (Classify is a pure function of the
	// netlist and property, so batched and per-property runs agree —
	// dverify oracle 5).
	type group struct {
		cone *verilog.Cone
		idx  []int
	}
	var groups []group
	gidx := make(map[*verilog.Cone]int)
	for i, c := range cs {
		if opt.Static != StaticOff {
			if res, ok := staticResult(nl, c); ok {
				out[i] = res
				continue
			}
		}
		cone := coneFor(nl, c, opt)
		k, ok := gidx[cone]
		if !ok {
			k = len(groups)
			gidx[cone] = k
			groups = append(groups, group{cone: cone})
		}
		groups[k].idx = append(groups[k].idx, i)
	}
	for _, grp := range groups {
		sub := make([]*sva.Compiled, len(grp.idx))
		for j, i := range grp.idx {
			sub[j] = cs[i]
		}
		res := e.verifyBatchGroup(ctx, nl, grp.cone, sub, opt)
		for j, i := range grp.idx {
			out[i] = res[j]
		}
	}
	return out
}

// coneWorthwhile reports whether exploring a property's cone pays for
// giving up the full-design group's shared graph and hunt trace. A cone
// always shrinks per-step simulation a little, but a private graph and a
// re-simulated hunt cost a fixed multiple of the batch's shared ones, so
// the reduction must buy something exponential: at least halving the
// packed register state (shrinking the reachable set quadratically or
// better), or pulling the input space under the exhaustive-enumeration
// bound that the full design exceeds. Both batched and per-property
// verification apply the same gate, so verdicts stay identical across
// the two paths (dverify oracle 5).
func coneWorthwhile(cone *verilog.Cone, nl *verilog.Netlist, opt Options) bool {
	if cone.Reduced.StateBits()*2 <= nl.StateBits() {
		return true
	}
	return cone.Reduced.InputBits() <= opt.MaxInputBits && nl.InputBits() > opt.MaxInputBits
}

// verifyBatchGroup runs one cone's share of a batch: every property here
// has the same closure, so they share the reduced design, graph and hunt
// trace.
func (e *Engine) verifyBatchGroup(ctx context.Context, nl *verilog.Netlist, cone *verilog.Cone, cs []*sva.Compiled, opt Options) []Result {
	out := make([]Result, len(cs))
	// Every fail in this group is ctx-derived, so classification (deadline
	// → StatusUnknown, cancellation → StatusError) applies throughout.
	fail := func(from int, err error) []Result {
		r := ctxResult(err)
		for i := from; i < len(out); i++ {
			out[i] = r
		}
		return out
	}
	if err := ctx.Err(); err != nil {
		return fail(0, err)
	}
	e.bindCone(nl, cone, opt.Backend)
	e.opt = opt

	union := []int{}
	for _, c := range cs {
		union = mergeSorted(union, c.SupportNets())
	}
	enumerate := e.nl.InputBits() <= opt.MaxInputBits
	bs := e.openBatch(union, enumerate)
	defer e.publishBatch(bs)

	// supportSrc maps the graph's support positions (full-design indices)
	// to the bound netlist the simulators run over.
	e.supportSrc = e.supportSrc[:0]
	for _, idx := range bs.g.Support {
		if e.cone != nil {
			e.supportSrc = append(e.supportSrc, e.cone.Map[idx])
		} else {
			e.supportSrc = append(e.supportSrc, idx)
		}
	}

	// unionPos maps a net index to its row position in the graph's
	// support union (which may be a cached superset of this batch's).
	if len(e.unionPos) != len(nl.Nets) {
		e.unionPos = make([]int32, len(nl.Nets))
	}
	for pos, idx := range bs.g.Support {
		e.unionPos[idx] = int32(pos)
	}

	// Phase 1: monitor-only product BFS per property over the graph.
	type pendingProp struct {
		i   int
		c   *sva.Compiled
		mon *sva.Monitor
	}
	var pending []pendingProp
	for i, c := range cs {
		if err := ctx.Err(); err != nil {
			// Undecided earlier properties hold interim results awaiting
			// the hunt phase; they must surface as interrupted too — the
			// zero Status value is StatusProven, never a verdict to leak.
			r := ctxResult(err)
			for _, p := range pending {
				out[p.i] = r
			}
			return fail(i, err)
		}
		var mon *sva.Monitor
		if opt.Backend == BackendCompiled {
			m, err := sva.NewMonitorCompiled(c)
			if err != nil {
				out[i] = Result{Status: StatusError, Err: err}
				continue
			}
			mon = m
		} else {
			mon = sva.NewMonitor(c)
		}
		res := e.graphSearch(ctx, bs, c, mon, enumerate)
		if res.Status == StatusCEX || res.Status == StatusError || res.Status == StatusUnknown {
			out[i] = res
			continue
		}
		if res.Exhaustive {
			if res.NonVacuous {
				res.Status = StatusProven
			} else {
				res.Status = StatusVacuous
			}
			out[i] = res
			continue
		}
		out[i] = res
		pending = append(pending, pendingProp{i: i, c: c, mon: mon})
	}
	if len(pending) == 0 {
		return out
	}

	// Phase 2: the shared random hunt for everything still undecided,
	// simulated run by run as long as anything remains pending — exactly
	// the per-run stimulus every per-property hunt would drive.
	maxPast := 0
	for _, p := range pending {
		if p.c.PastDepth > maxPast {
			maxPast = p.c.PastDepth
		}
	}
	ring := e.ensureScatter(maxPast + 1)
	histBuf := make([][]uint64, maxPast+1)
	for run := 0; run < opt.RandomRuns && len(pending) > 0; run++ {
		if err := ctx.Err(); err != nil {
			r := ctxResult(err)
			for _, p := range pending {
				out[p.i] = r
			}
			return out
		}
		e.ensureHuntRun(bs, run)
		ht := bs.ht
		for _, p := range pending {
			p.mon.Reset()
		}
		for t := 0; t < ht.Depth && len(pending) > 0; t++ {
			slot := t % (maxPast + 1)
			e.scatterRow(ring[slot], ht.Support, ht.row(run, t))
			for k := 0; k <= maxPast; k++ {
				if t-k >= 0 {
					histBuf[k] = ring[(t-k)%(maxPast+1)]
				} else {
					histBuf[k] = e.zeroEnv
				}
			}
			for pi := 0; pi < len(pending); pi++ {
				p := pending[pi]
				r := &out[p.i]
				mo := p.mon.Step(histBuf)
				if mo.AnteCompleted {
					r.NonVacuous = true
				}
				if mo.Violated {
					full := *r
					full.Status = StatusCEX
					full.CEX = e.replayCEX(huntInputs(ht, run, t), t, mo.ViolatedAge)
					if t > full.Depth {
						full.Depth = t
					}
					out[p.i] = full
					pending = append(pending[:pi], pending[pi+1:]...)
					pi--
					continue
				}
				if t > r.Depth {
					r.Depth = t
				}
			}
		}
	}
	if err := ctx.Err(); err != nil {
		r := ctxResult(err)
		for _, p := range pending {
			out[p.i] = r
		}
		return out
	}
	for _, p := range pending {
		out[p.i].Status = StatusBoundedPass
	}
	return out
}

// VerifyBatch model-checks a batch of compiled assertions with a one-shot
// engine sharing one reachability exploration.
func VerifyBatch(ctx context.Context, nl *verilog.Netlist, cs []*sva.Compiled, opt Options) []Result {
	return NewEngine().VerifyBatch(ctx, nl, cs, opt)
}

// openBatch fetches (or starts) the exploration for the engine's bound
// design and current options. A cache hit whose support union misses
// nets of this batch is rebuilt over the merged union, so unions grow
// monotonically per key; a cached hunt trace is kept only if its run
// budget matches.
func (e *Engine) openBatch(union []int, enumerate bool) *batchState {
	bs := &batchState{key: e.graphKey(enumerate)}
	if e.Graphs != nil {
		g, ht, stale := e.Graphs.lookup(bs.key, union)
		if g != nil {
			bs.g = g
			if ht != nil && ht.Runs == e.opt.RandomRuns && ht.Depth == e.opt.RandomDepth && ht.Seed == e.opt.Seed {
				bs.ht = ht
			}
			return bs
		}
		if stale != nil {
			union = mergeSorted(union, stale)
		}
	}
	bs.g = e.newGraph(union, enumerate)
	bs.gOwned = true
	bs.dirty = true
	return bs
}

// ensureExpanded makes node u's edges available, cloning a cache-owned
// graph before the first private extension (copy-on-write).
func (e *Engine) ensureExpanded(bs *batchState, u int32) error {
	if bs.g.EdgeOff[u] >= 0 {
		return nil
	}
	if !bs.gOwned {
		bs.g = bs.g.clone()
		bs.gOwned = true
	}
	if err := e.expandNode(bs.g, u); err != nil {
		bs.failed = true
		return err
	}
	bs.dirty = true
	return nil
}

// ensureExpandedAhead is ensureExpanded for the popped node, plus
// frontier lookahead on the 64-lane machine: bounded-mode nodes carry
// only MaxInputSamples+2 edges, so expanding one node at a time leaves
// most lanes idle. When the sliced machine is active and a pass has room
// for k nodes, the next k-1 distinct unexpanded design nodes already
// sitting in the BFS queue ride along in the same pass. Queue order is
// exactly the order the one-at-a-time flow would expand them in (pops
// are FIFO and expansion happens only on first pop), so the graph bytes
// are identical; the only waste is a few expansions ahead of an early
// counterexample exit, which the shared cache amortizes anyway.
func (e *Engine) ensureExpandedAhead(bs *batchState, nodes []gnode, head int) error {
	u := nodes[head].node
	if bs.g.EdgeOff[u] >= 0 {
		return nil
	}
	msl := e.slicedGraphMachine(bs.g)
	k := 0
	if msl != nil && bs.g.EdgesPerNode > 0 {
		k = verilog.SlicedLanes / bs.g.EdgesPerNode
	}
	if k <= 1 {
		return e.ensureExpanded(bs, u)
	}
	if !bs.gOwned {
		bs.g = bs.g.clone()
		bs.gOwned = true
	}
	us := append(e.expandUs[:0], u)
	for i := head + 1; i < len(nodes) && len(us) < k; i++ {
		v := nodes[i].node
		if bs.g.EdgeOff[v] >= 0 {
			continue
		}
		dup := false
		for _, w := range us {
			if w == v {
				dup = true
				break
			}
		}
		if !dup {
			us = append(us, v)
		}
	}
	e.expandUs = us
	e.expandNodesSliced(bs.g, msl, us)
	bs.dirty = true
	return nil
}

// ensureHuntRun makes hunt run `run` available in the trace.
func (e *Engine) ensureHuntRun(bs *batchState, run int) {
	if bs.ht == nil {
		// Stimulus is recorded over the FULL input layout even under a
		// cone (fillStimulus draws full vectors), so traces replay on the
		// full design and CEX inputs match the per-property hunt's.
		bs.ht = &HuntTrace{
			Runs: e.opt.RandomRuns, Depth: e.opt.RandomDepth, Seed: e.opt.Seed,
			Support: bs.g.Support, NumInputs: len(e.fullNl.Inputs),
		}
		bs.htOwned = true
	}
	if run < bs.ht.RunsDone {
		return
	}
	if !bs.htOwned {
		bs.ht = bs.ht.clone()
		bs.htOwned = true
	}
	e.extendHunt(bs.ht, run)
	bs.dirty = true
}

// publishBatch republishes a grown exploration to the cache.
func (e *Engine) publishBatch(bs *batchState) {
	if e.Graphs == nil || !bs.dirty || bs.failed {
		return
	}
	e.Graphs.store(bs.key, bs.g, bs.ht)
	if e.gVisitedFor == bs.g {
		// The published graph is now shared and immutable; drop the
		// engine's extension index so a later batch re-syncs on a clone.
		e.gVisitedFor = nil
	}
}

func (e *Engine) graphKey(enumerate bool) graphKey {
	k := graphKey{nl: e.nl, backend: e.backend, enumerate: enumerate}
	if !enumerate {
		// Bounded graphs store per-state sampled vectors, a pure function
		// of (seed, state, sample count); enumerate graphs are a pure
		// function of the netlist alone and share across seeds.
		k.maxSamples = e.opt.MaxInputSamples
		k.seed = e.opt.Seed
	}
	return k
}

// graphSearch is the monitor-only mirror of Engine.bfs over the shared
// graph: identical state keys, identical discovery order, identical cap
// and counter bookkeeping — the simulator work is simply replaced by
// edge lookups (nodes expand on first use, then stay shared).
func (e *Engine) graphSearch(ctx context.Context, bs *batchState, c *sva.Compiled, mon *sva.Monitor, enumerate bool) Result {
	res := Result{}
	e.c = c
	e.mon = mon
	e.support = nil
	if c.PastDepth > 0 {
		e.support = c.SupportNets()
	}
	e.visitedExact.reset(e.stateKeyLen())
	e.visitedHash.reset()
	nVisited := 0
	seen := func(node []uint64, alive, sat uint64, hist [][]uint64) bool {
		if enumerate {
			k, h := e.graphKeyHash(node, alive, sat, hist)
			if _, existed := e.visitedExact.insert(h, k); existed {
				return true
			}
		} else {
			h := e.graphHash(node, alive, sat, hist)
			if h == 0 {
				h = 1
			}
			if e.visitedHash.insert(h) {
				return true
			}
		}
		nVisited++
		return false
	}
	nodes := e.gnodes[:0]
	nodes = append(nodes, gnode{node: 0, parent: -1, edge: -1})
	seen(bs.g.node(0), 0, 0, nil)
	closed := true

	rows := e.ensureScatter(c.PastDepth + 1)
	if cap(e.histBuf) < c.PastDepth+1 {
		e.histBuf = make([][]uint64, c.PastDepth+1)
	}
	histBuf := e.histBuf[:c.PastDepth+1]

	for head := 0; head < len(nodes); head++ {
		if head&63 == 0 {
			if err := ctx.Err(); err != nil {
				e.gnodes = releaseGnodes(nodes)
				return ctxResult(err)
			}
		}
		if nVisited >= e.opt.MaxProductStates {
			closed = false
			break
		}
		cur := nodes[head]
		if int(cur.depth) > res.Depth {
			res.Depth = int(cur.depth)
		}
		if err := e.ensureExpandedAhead(bs, nodes, head); err != nil {
			// Mirrors the per-property path's treatment of a simulator
			// load failure: an engine error, never a partial verdict.
			e.gnodes = releaseGnodes(nodes)
			return Result{Status: StatusError, Err: err}
		}
		g := bs.g
		// Scatter the history rows once per popped state; row 0 varies per
		// edge below.
		histBuf[0] = rows[0]
		for k := 1; k <= c.PastDepth; k++ {
			if k-1 < len(cur.hist) {
				e.scatterRow(rows[k], g.Support, cur.hist[k-1])
				histBuf[k] = rows[k]
			} else {
				histBuf[k] = e.zeroEnv
			}
		}
		// Walk representative edges only: duplicate (row, destination)
		// edges repeat the exact same monitor transition and child state
		// (see Graph.dedupEdges), so skipping them changes nothing but
		// the work.
		ds := g.DedupOff[cur.node]
		for j, ei := range g.Dedup[ds : ds+g.DedupN[cur.node]] {
			urow := g.repRow(ds + int32(j))
			e.scatterRow(rows[0], g.Support, urow)
			mon.SetState(cur.alive, cur.sat)
			mo := mon.Step(histBuf)
			if mo.AnteCompleted {
				res.NonVacuous = true
			}
			if mo.Violated {
				res.Status = StatusCEX
				res.States = nVisited
				res.CEX = e.buildGraphCEX(g, nodes, head, ei, int(cur.depth), mo.ViolatedAge)
				e.gnodes = releaseGnodes(nodes)
				return res
			}
			alive, sat := mon.State()
			childHist := e.histScratch[:0]
			if c.PastDepth > 0 {
				childHist = append(childHist, urow)
				for k := 0; k < c.PastDepth-1 && k < len(cur.hist); k++ {
					childHist = append(childHist, cur.hist[k])
				}
				e.histScratch = childHist
			}
			if !seen(g.node(g.Dst[ei]), alive, sat, childHist) {
				child := gnode{
					node:   g.Dst[ei],
					alive:  alive,
					sat:    sat,
					parent: int32(head),
					edge:   ei,
					depth:  cur.depth + 1,
				}
				if c.PastDepth > 0 {
					// Rows are graph-owned and immutable; retaining the
					// slice header list is enough (no deep copies).
					child.hist = append(make([][]uint64, 0, len(childHist)), childHist...)
				}
				nodes = append(nodes, child)
			}
		}
	}
	e.gnodes = releaseGnodes(nodes)
	res.States = nVisited
	res.Exhaustive = enumerate && closed
	return res
}

// releaseGnodes drops the nodes' history references before the slice is
// retained as engine scratch, so an evicted graph's row arrays are not
// pinned in memory until the next batch happens to overwrite every
// entry.
func releaseGnodes(nodes []gnode) []gnode {
	for i := range nodes {
		nodes[i].hist = nil
	}
	return nodes
}

// graphKeyHash is stateKeyHash over a graph product state: byte-identical
// to the per-property encoding of the same (registers, monitor, history)
// state, reading packed registers from the graph and history values from
// union rows.
func (e *Engine) graphKeyHash(packed []uint64, alive, sat uint64, hist [][]uint64) ([]byte, uint64) {
	buf := e.keyBuf[:0]
	h := uint64(stateHashSeed)
	put := func(v uint64) {
		buf = le64Append(buf, v)
		h = stateMix(h, v)
	}
	for _, v := range packed {
		put(v)
	}
	put(alive)
	if e.c.Ranged {
		put(sat)
	}
	for k := 0; k < e.c.PastDepth; k++ {
		if k < len(hist) {
			row := hist[k]
			for _, idx := range e.support {
				put(row[e.unionPos[idx]])
			}
		} else {
			// Histories shorter than PastDepth pad with the zero env,
			// exactly as the per-property key does.
			for range e.support {
				put(0)
			}
		}
	}
	e.keyBuf = buf
	return buf, h
}

// graphHash is stateHash over a graph product state (bounded-mode
// fingerprint), matching graphKeyHash's mixing.
func (e *Engine) graphHash(packed []uint64, alive, sat uint64, hist [][]uint64) uint64 {
	h := uint64(stateHashSeed)
	mix := func(v uint64) {
		h = stateMix(h, v)
	}
	for _, v := range packed {
		mix(v)
	}
	mix(alive)
	if e.c.Ranged {
		mix(sat)
	}
	for k := 0; k < e.c.PastDepth; k++ {
		if k < len(hist) {
			row := hist[k]
			for _, idx := range e.support {
				mix(row[e.unionPos[idx]])
			}
		} else {
			for range e.support {
				mix(0)
			}
		}
	}
	return h
}

// buildGraphCEX reconstructs the refuting stimulus from the product-BFS
// parent chain (edge labels carry the input vectors) and replays it on
// the simulator, exactly as the per-property buildCEX does.
func (e *Engine) buildGraphCEX(g *Graph, nodes []gnode, head int, lastEdge int32, depth, violatedAge int) *CEX {
	var inputs [][]uint64
	for i := head; i >= 0 && nodes[i].parent >= 0; i = int(nodes[i].parent) {
		inputs = append(inputs, e.edgeVec(g, nodes[int(nodes[i].parent)].node, nodes[i].edge))
	}
	for l, r := 0, len(inputs)-1; l < r; l, r = l+1, r-1 {
		inputs[l], inputs[r] = inputs[r], inputs[l]
	}
	inputs = append(inputs, e.edgeVec(g, nodes[head].node, lastEdge))
	if e.cone != nil {
		// Edge vectors are reduced-layout; counter-examples are reported
		// (and replayed) in full-design terms.
		for i, u := range inputs {
			inputs[i] = e.expandInputVec(u)
		}
	}
	return e.replayCEX(inputs, depth, violatedAge)
}

// edgeVec returns the input vector labelling edge ei out of src.
func (e *Engine) edgeVec(g *Graph, src, ei int32) []uint64 {
	if g.Enumerate {
		return e.enumInputVectors()[int(ei-g.EdgeOff[src])]
	}
	return g.vec(ei)
}

// huntInputs builds the per-cycle stimulus view of run's first t+1 cycles.
func huntInputs(ht *HuntTrace, run, t int) [][]uint64 {
	vecs := make([][]uint64, t+1)
	for k := range vecs {
		vecs[k] = ht.input(run, k)
	}
	return vecs
}

// scatterRow writes a union-support row into a full-width env row at the
// support nets' positions (other positions are never read: monitors only
// evaluate their support nets).
func (e *Engine) scatterRow(dst []uint64, support []int, urow []uint64) {
	for j, idx := range support {
		dst[idx] = urow[j]
	}
}

// ensureScatter returns n reusable scratch rows at the monitor-facing
// (full-design) width — monitors read full net indices even when the
// simulators run over a cone.
func (e *Engine) ensureScatter(n int) [][]uint64 {
	for len(e.scatterRows) < n {
		e.scatterRows = append(e.scatterRows, make([]uint64, e.monNets))
	}
	return e.scatterRows[:n]
}
