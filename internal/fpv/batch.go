package fpv

import (
	"context"
	"fmt"

	"assertionbench/internal/sva"
	"assertionbench/internal/verilog"
)

// The batched verification path: all properties of one design share a
// single demand-driven reachability exploration (graph.go) instead of
// re-simulating the design's state space once per assertion. Each
// property runs a monitor-only product BFS over the graph (expanding
// nodes on first use), and — in bounded mode — the unresolved remainder
// of the batch steps over one shared random-hunt trace, simulated run by
// run as consumed. Verdicts are bit-identical to the per-property
// reference search, field for field including CEX stimulus (dverify
// oracle 5 enforces this); only the work is amortized.

// gnode is one product state of the batched search: a graph node times
// the monitor state, plus the sampled-history window its property reads
// (rows are graph-owned union rows, most recent first).
type gnode struct {
	node   int32
	alive  uint64
	sat    uint64
	parent int32
	edge   int32 // graph edge taken into this state (-1 at the root)
	depth  int32
	hist   [][]uint64
}

// batchState carries one VerifyBatch call's exploration: the graph and
// hunt trace in use, whether they are private clones (extendable) or
// still the cache's immutable copies, and whether anything grew and so
// is worth republishing.
type batchState struct {
	key     graphKey
	g       *Graph
	ht      *HuntTrace
	gOwned  bool
	htOwned bool
	dirty   bool
	// failed marks an exploration that hit an engine error; it must not
	// be republished.
	failed bool
}

// VerifyBatch model-checks a batch of compiled assertions against the
// netlist with one shared design-state exploration, returning one result
// per input in order. Results are identical to calling VerifyCompiled per
// assertion with the same Options. Cancellation marks every undecided
// result StatusError with ctx.Err().
func (e *Engine) VerifyBatch(ctx context.Context, nl *verilog.Netlist, cs []*sva.Compiled, opt Options) []Result {
	out := make([]Result, len(cs))
	opt = opt.withDefaults()
	fail := func(from int, err error) []Result {
		for i := from; i < len(out); i++ {
			out[i] = Result{Status: StatusError, Err: err}
		}
		return out
	}
	if opt.Backend != BackendCompiled && opt.Backend != BackendInterp {
		return fail(0, fmt.Errorf("fpv: unknown backend %q", opt.Backend))
	}
	if err := ctx.Err(); err != nil {
		return fail(0, err)
	}
	if len(cs) == 0 {
		return out
	}
	e.bind(nl, opt.Backend)
	e.opt = opt

	union := []int{}
	for _, c := range cs {
		union = mergeSorted(union, c.SupportNets())
	}
	enumerate := nl.InputBits() <= opt.MaxInputBits
	bs := e.openBatch(union, enumerate)
	defer e.publishBatch(bs)

	// unionPos maps a net index to its row position in the graph's
	// support union (which may be a cached superset of this batch's).
	if len(e.unionPos) != len(nl.Nets) {
		e.unionPos = make([]int32, len(nl.Nets))
	}
	for pos, idx := range bs.g.Support {
		e.unionPos[idx] = int32(pos)
	}

	// Phase 1: monitor-only product BFS per property over the graph.
	type pendingProp struct {
		i   int
		c   *sva.Compiled
		mon *sva.Monitor
	}
	var pending []pendingProp
	for i, c := range cs {
		if err := ctx.Err(); err != nil {
			// Undecided earlier properties hold interim results awaiting
			// the hunt phase; they must surface as canceled too — the
			// zero Status value is StatusProven, never a verdict to leak.
			for _, p := range pending {
				out[p.i] = Result{Status: StatusError, Err: err}
			}
			return fail(i, err)
		}
		var mon *sva.Monitor
		if opt.Backend == BackendCompiled {
			m, err := sva.NewMonitorCompiled(c)
			if err != nil {
				out[i] = Result{Status: StatusError, Err: err}
				continue
			}
			mon = m
		} else {
			mon = sva.NewMonitor(c)
		}
		res := e.graphSearch(ctx, bs, c, mon, enumerate)
		if res.Status == StatusCEX || res.Status == StatusError {
			out[i] = res
			continue
		}
		if res.Exhaustive {
			if res.NonVacuous {
				res.Status = StatusProven
			} else {
				res.Status = StatusVacuous
			}
			out[i] = res
			continue
		}
		out[i] = res
		pending = append(pending, pendingProp{i: i, c: c, mon: mon})
	}
	if len(pending) == 0 {
		return out
	}

	// Phase 2: the shared random hunt for everything still undecided,
	// simulated run by run as long as anything remains pending — exactly
	// the per-run stimulus every per-property hunt would drive.
	maxPast := 0
	for _, p := range pending {
		if p.c.PastDepth > maxPast {
			maxPast = p.c.PastDepth
		}
	}
	ring := e.ensureScatter(maxPast + 1)
	histBuf := make([][]uint64, maxPast+1)
	for run := 0; run < opt.RandomRuns && len(pending) > 0; run++ {
		if err := ctx.Err(); err != nil {
			for _, p := range pending {
				out[p.i] = Result{Status: StatusError, Err: err}
			}
			return out
		}
		e.ensureHuntRun(bs, run)
		ht := bs.ht
		for _, p := range pending {
			p.mon.Reset()
		}
		for t := 0; t < ht.Depth && len(pending) > 0; t++ {
			slot := t % (maxPast + 1)
			e.scatterRow(ring[slot], ht.Support, ht.row(run, t))
			for k := 0; k <= maxPast; k++ {
				if t-k >= 0 {
					histBuf[k] = ring[(t-k)%(maxPast+1)]
				} else {
					histBuf[k] = e.zeroEnv
				}
			}
			for pi := 0; pi < len(pending); pi++ {
				p := pending[pi]
				r := &out[p.i]
				mo := p.mon.Step(histBuf)
				if mo.AnteCompleted {
					r.NonVacuous = true
				}
				if mo.Violated {
					full := *r
					full.Status = StatusCEX
					full.CEX = e.replayCEX(huntInputs(ht, run, t), t, mo.ViolatedAge)
					if t > full.Depth {
						full.Depth = t
					}
					out[p.i] = full
					pending = append(pending[:pi], pending[pi+1:]...)
					pi--
					continue
				}
				if t > r.Depth {
					r.Depth = t
				}
			}
		}
	}
	if err := ctx.Err(); err != nil {
		for _, p := range pending {
			out[p.i] = Result{Status: StatusError, Err: err}
		}
		return out
	}
	for _, p := range pending {
		out[p.i].Status = StatusBoundedPass
	}
	return out
}

// VerifyBatch model-checks a batch of compiled assertions with a one-shot
// engine sharing one reachability exploration.
func VerifyBatch(ctx context.Context, nl *verilog.Netlist, cs []*sva.Compiled, opt Options) []Result {
	return NewEngine().VerifyBatch(ctx, nl, cs, opt)
}

// openBatch fetches (or starts) the exploration for the engine's bound
// design and current options. A cache hit whose support union misses
// nets of this batch is rebuilt over the merged union, so unions grow
// monotonically per key; a cached hunt trace is kept only if its run
// budget matches.
func (e *Engine) openBatch(union []int, enumerate bool) *batchState {
	bs := &batchState{key: e.graphKey(enumerate)}
	if e.Graphs != nil {
		g, ht, stale := e.Graphs.lookup(bs.key, union)
		if g != nil {
			bs.g = g
			if ht != nil && ht.Runs == e.opt.RandomRuns && ht.Depth == e.opt.RandomDepth && ht.Seed == e.opt.Seed {
				bs.ht = ht
			}
			return bs
		}
		if stale != nil {
			union = mergeSorted(union, stale)
		}
	}
	bs.g = e.newGraph(union, enumerate)
	bs.gOwned = true
	bs.dirty = true
	return bs
}

// ensureExpanded makes node u's edges available, cloning a cache-owned
// graph before the first private extension (copy-on-write).
func (e *Engine) ensureExpanded(bs *batchState, u int32) error {
	if bs.g.EdgeOff[u] >= 0 {
		return nil
	}
	if !bs.gOwned {
		bs.g = bs.g.clone()
		bs.gOwned = true
	}
	if err := e.expandNode(bs.g, u); err != nil {
		bs.failed = true
		return err
	}
	bs.dirty = true
	return nil
}

// ensureHuntRun makes hunt run `run` available in the trace.
func (e *Engine) ensureHuntRun(bs *batchState, run int) {
	if bs.ht == nil {
		bs.ht = &HuntTrace{
			Runs: e.opt.RandomRuns, Depth: e.opt.RandomDepth, Seed: e.opt.Seed,
			Support: bs.g.Support, NumInputs: len(e.nl.Inputs),
		}
		bs.htOwned = true
	}
	if run < bs.ht.RunsDone {
		return
	}
	if !bs.htOwned {
		bs.ht = bs.ht.clone()
		bs.htOwned = true
	}
	e.extendHunt(bs.ht, run)
	bs.dirty = true
}

// publishBatch republishes a grown exploration to the cache.
func (e *Engine) publishBatch(bs *batchState) {
	if e.Graphs == nil || !bs.dirty || bs.failed {
		return
	}
	e.Graphs.store(bs.key, bs.g, bs.ht)
	if e.gVisitedFor == bs.g {
		// The published graph is now shared and immutable; drop the
		// engine's extension index so a later batch re-syncs on a clone.
		e.gVisitedFor = nil
	}
}

func (e *Engine) graphKey(enumerate bool) graphKey {
	k := graphKey{nl: e.nl, backend: e.backend, enumerate: enumerate}
	if !enumerate {
		// Bounded graphs store per-state sampled vectors, a pure function
		// of (seed, state, sample count); enumerate graphs are a pure
		// function of the netlist alone and share across seeds.
		k.maxSamples = e.opt.MaxInputSamples
		k.seed = e.opt.Seed
	}
	return k
}

// graphSearch is the monitor-only mirror of Engine.bfs over the shared
// graph: identical state keys, identical discovery order, identical cap
// and counter bookkeeping — the simulator work is simply replaced by
// edge lookups (nodes expand on first use, then stay shared).
func (e *Engine) graphSearch(ctx context.Context, bs *batchState, c *sva.Compiled, mon *sva.Monitor, enumerate bool) Result {
	res := Result{}
	e.c = c
	e.mon = mon
	e.support = nil
	if c.PastDepth > 0 {
		e.support = c.SupportNets()
	}
	e.visitedExact.reset(e.stateKeyLen())
	e.visitedHash.reset()
	nVisited := 0
	seen := func(node []uint64, alive, sat uint64, hist [][]uint64) bool {
		if enumerate {
			k, h := e.graphKeyHash(node, alive, sat, hist)
			if _, existed := e.visitedExact.insert(h, k); existed {
				return true
			}
		} else {
			h := e.graphHash(node, alive, sat, hist)
			if h == 0 {
				h = 1
			}
			if e.visitedHash.insert(h) {
				return true
			}
		}
		nVisited++
		return false
	}
	nodes := e.gnodes[:0]
	nodes = append(nodes, gnode{node: 0, parent: -1, edge: -1})
	seen(bs.g.node(0), 0, 0, nil)
	closed := true

	rows := e.ensureScatter(c.PastDepth + 1)
	if cap(e.histBuf) < c.PastDepth+1 {
		e.histBuf = make([][]uint64, c.PastDepth+1)
	}
	histBuf := e.histBuf[:c.PastDepth+1]

	for head := 0; head < len(nodes); head++ {
		if head&63 == 0 {
			if err := ctx.Err(); err != nil {
				e.gnodes = releaseGnodes(nodes)
				return Result{Status: StatusError, Err: err}
			}
		}
		if nVisited >= e.opt.MaxProductStates {
			closed = false
			break
		}
		cur := nodes[head]
		if int(cur.depth) > res.Depth {
			res.Depth = int(cur.depth)
		}
		if err := e.ensureExpanded(bs, cur.node); err != nil {
			// Mirrors the per-property path's treatment of a simulator
			// load failure: an engine error, never a partial verdict.
			e.gnodes = releaseGnodes(nodes)
			return Result{Status: StatusError, Err: err}
		}
		g := bs.g
		// Scatter the history rows once per popped state; row 0 varies per
		// edge below.
		histBuf[0] = rows[0]
		for k := 1; k <= c.PastDepth; k++ {
			if k-1 < len(cur.hist) {
				e.scatterRow(rows[k], g.Support, cur.hist[k-1])
				histBuf[k] = rows[k]
			} else {
				histBuf[k] = e.zeroEnv
			}
		}
		off := g.EdgeOff[cur.node]
		for ei := off; ei < off+int32(g.EdgesPerNode); ei++ {
			urow := g.row(ei)
			e.scatterRow(rows[0], g.Support, urow)
			mon.SetState(cur.alive, cur.sat)
			mo := mon.Step(histBuf)
			if mo.AnteCompleted {
				res.NonVacuous = true
			}
			if mo.Violated {
				res.Status = StatusCEX
				res.States = nVisited
				res.CEX = e.buildGraphCEX(g, nodes, head, ei, int(cur.depth), mo.ViolatedAge)
				e.gnodes = releaseGnodes(nodes)
				return res
			}
			alive, sat := mon.State()
			childHist := e.histScratch[:0]
			if c.PastDepth > 0 {
				childHist = append(childHist, urow)
				for k := 0; k < c.PastDepth-1 && k < len(cur.hist); k++ {
					childHist = append(childHist, cur.hist[k])
				}
				e.histScratch = childHist
			}
			if !seen(g.node(g.Dst[ei]), alive, sat, childHist) {
				child := gnode{
					node:   g.Dst[ei],
					alive:  alive,
					sat:    sat,
					parent: int32(head),
					edge:   ei,
					depth:  cur.depth + 1,
				}
				if c.PastDepth > 0 {
					// Rows are graph-owned and immutable; retaining the
					// slice header list is enough (no deep copies).
					child.hist = append(make([][]uint64, 0, len(childHist)), childHist...)
				}
				nodes = append(nodes, child)
			}
		}
	}
	e.gnodes = releaseGnodes(nodes)
	res.States = nVisited
	res.Exhaustive = enumerate && closed
	return res
}

// releaseGnodes drops the nodes' history references before the slice is
// retained as engine scratch, so an evicted graph's row arrays are not
// pinned in memory until the next batch happens to overwrite every
// entry.
func releaseGnodes(nodes []gnode) []gnode {
	for i := range nodes {
		nodes[i].hist = nil
	}
	return nodes
}

// graphKeyHash is stateKeyHash over a graph product state: byte-identical
// to the per-property encoding of the same (registers, monitor, history)
// state, reading packed registers from the graph and history values from
// union rows.
func (e *Engine) graphKeyHash(packed []uint64, alive, sat uint64, hist [][]uint64) ([]byte, uint64) {
	buf := e.keyBuf[:0]
	h := uint64(stateHashSeed)
	put := func(v uint64) {
		buf = le64Append(buf, v)
		h = stateMix(h, v)
	}
	for _, v := range packed {
		put(v)
	}
	put(alive)
	if e.c.Ranged {
		put(sat)
	}
	for k := 0; k < e.c.PastDepth; k++ {
		if k < len(hist) {
			row := hist[k]
			for _, idx := range e.support {
				put(row[e.unionPos[idx]])
			}
		} else {
			// Histories shorter than PastDepth pad with the zero env,
			// exactly as the per-property key does.
			for range e.support {
				put(0)
			}
		}
	}
	e.keyBuf = buf
	return buf, h
}

// graphHash is stateHash over a graph product state (bounded-mode
// fingerprint), matching graphKeyHash's mixing.
func (e *Engine) graphHash(packed []uint64, alive, sat uint64, hist [][]uint64) uint64 {
	h := uint64(stateHashSeed)
	mix := func(v uint64) {
		h = stateMix(h, v)
	}
	for _, v := range packed {
		mix(v)
	}
	mix(alive)
	if e.c.Ranged {
		mix(sat)
	}
	for k := 0; k < e.c.PastDepth; k++ {
		if k < len(hist) {
			row := hist[k]
			for _, idx := range e.support {
				mix(row[e.unionPos[idx]])
			}
		} else {
			for range e.support {
				mix(0)
			}
		}
	}
	return h
}

// buildGraphCEX reconstructs the refuting stimulus from the product-BFS
// parent chain (edge labels carry the input vectors) and replays it on
// the simulator, exactly as the per-property buildCEX does.
func (e *Engine) buildGraphCEX(g *Graph, nodes []gnode, head int, lastEdge int32, depth, violatedAge int) *CEX {
	var inputs [][]uint64
	for i := head; i >= 0 && nodes[i].parent >= 0; i = int(nodes[i].parent) {
		inputs = append(inputs, e.edgeVec(g, nodes[int(nodes[i].parent)].node, nodes[i].edge))
	}
	for l, r := 0, len(inputs)-1; l < r; l, r = l+1, r-1 {
		inputs[l], inputs[r] = inputs[r], inputs[l]
	}
	inputs = append(inputs, e.edgeVec(g, nodes[head].node, lastEdge))
	return e.replayCEX(inputs, depth, violatedAge)
}

// edgeVec returns the input vector labelling edge ei out of src.
func (e *Engine) edgeVec(g *Graph, src, ei int32) []uint64 {
	if g.Enumerate {
		return e.enumInputVectors()[int(ei-g.EdgeOff[src])]
	}
	return g.vec(ei)
}

// huntInputs builds the per-cycle stimulus view of run's first t+1 cycles.
func huntInputs(ht *HuntTrace, run, t int) [][]uint64 {
	vecs := make([][]uint64, t+1)
	for k := range vecs {
		vecs[k] = ht.input(run, k)
	}
	return vecs
}

// scatterRow writes a union-support row into a full-width env row at the
// support nets' positions (other positions are never read: monitors only
// evaluate their support nets).
func (e *Engine) scatterRow(dst []uint64, support []int, urow []uint64) {
	for j, idx := range support {
		dst[idx] = urow[j]
	}
}

// ensureScatter returns n reusable full-env scratch rows.
func (e *Engine) ensureScatter(n int) [][]uint64 {
	for len(e.scatterRows) < n {
		e.scatterRows = append(e.scatterRows, make([]uint64, len(e.nl.Nets)))
	}
	return e.scatterRows[:n]
}
