package fpv

import (
	"context"
	"testing"

	"assertionbench/internal/verilog"
)

// TestUnpackInputsMultiWord checks the positional unpack against a
// bit-by-bit reference across word boundaries — the regression for the
// old single-word form, which silently read every input past bit 63 as
// zero.
func TestUnpackInputsMultiWord(t *testing.T) {
	widths := []int{40, 40, 16, 33} // 129 bits -> 3 words, two straddles
	words := []uint64{0x0123456789ABCDEF, 0xFEDCBA9876543210, 0x1CE5}
	vals := make([]uint64, len(widths))
	unpackInputs(vals, widths, words)
	pos := 0
	for i, w := range widths {
		var ref uint64
		for b := 0; b < w; b++ {
			bit := (words[(pos+b)>>6] >> uint((pos+b)&63)) & 1
			ref |= bit << uint(b)
		}
		if vals[i] != ref {
			t.Errorf("input %d (width %d at bit %d) = %#x, want %#x", i, w, pos, vals[i], ref)
		}
		pos += w
	}
	if vals[2] == 0 || vals[3] == 0 {
		t.Error("inputs past bit 63 unpacked as zero — the old single-word bug")
	}
}

// TestUnpackInputsSingleWordCompat pins the narrow-design behavior: for
// up to 64 packed bits the positional unpack must match the historical
// shift-and-consume loop bit for bit, so existing seeds keep their
// search trajectories.
func TestUnpackInputsSingleWordCompat(t *testing.T) {
	widths := []int{3, 1, 8, 4, 17, 31} // exactly 64 bits
	vals := make([]uint64, len(widths))
	for _, w := range []uint64{0, ^uint64(0), 0xDEADBEEFCAFE1234, 1} {
		unpackInputs(vals, widths, []uint64{w})
		v := w
		for i, width := range widths {
			want := v & verilog.WidthMask(width)
			if vals[i] != want {
				t.Fatalf("word %#x input %d = %#x, want %#x", w, i, vals[i], want)
			}
			v >>= uint(width)
		}
	}
}

func TestInputWords(t *testing.T) {
	cases := []struct {
		widths []int
		want   int
	}{
		{nil, 1},
		{[]int{1}, 1},
		{[]int{64}, 1},
		{[]int{33, 31}, 1},
		{[]int{33, 32}, 2},
		{[]int{64, 64, 1}, 3},
	}
	for _, c := range cases {
		if got := inputWords(c.widths); got != c.want {
			t.Errorf("inputWords(%v) = %d, want %d", c.widths, got, c.want)
		}
	}
}

// TestWideInputBeyond64BitsIsDriven: on a design wider than 64 input
// bits, the bounded search must still drive the inputs past bit 63 —
// here the violation requires b (packed at bit 64) to go high. Cone
// reduction is disabled so the full 65-bit packing layer is exercised.
func TestWideInputBeyond64BitsIsDriven(t *testing.T) {
	nl := elab(t, `
module wide(clk, a, b, r);
input clk;
input [63:0] a;
input b;
output r; reg r;
always @(posedge clk) r <= b;
endmodule`, "wide")
	if nl.InputBits() != 65 {
		t.Fatalf("input bits = %d, want 65", nl.InputBits())
	}
	r := VerifySource(context.Background(), nl, "a == a |-> b == 0", Options{
		MaxProductStates: 100, MaxInputBits: 4, MaxInputSamples: 4,
		RandomRuns: 2, RandomDepth: 4, Seed: 1, Cone: ConeOff,
	})
	if r.Status != StatusCEX {
		t.Fatalf("verdict %v, want cex (b must be driven high)", r.Status)
	}
	bPos := -1
	for pos, idx := range nl.Inputs {
		if nl.Nets[idx].Name == "b" {
			bPos = pos
		}
	}
	if bPos < 0 {
		t.Fatal("no input b")
	}
	driven := false
	for _, row := range r.CEX.Inputs {
		if row[bPos] == 1 {
			driven = true
		}
	}
	if !driven {
		t.Error("CEX stimulus never drives b high")
	}
}
