package fpv

import (
	"context"
	"errors"
	"testing"
	"time"
)

// An expired deadline is a budget running out: the engine reports the
// anytime verdict StatusUnknown, never StatusError.
func TestDeadlineReturnsUnknown(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()

	r := VerifySource(ctx, nl, "rst == 1 |=> count == 0", Options{})
	if r.Status != StatusUnknown {
		t.Fatalf("deadline-expired verify: status %v, want unknown", r.Status)
	}
	if !errors.Is(r.Err, context.DeadlineExceeded) {
		t.Fatalf("deadline-expired verify: err %v, want DeadlineExceeded", r.Err)
	}
	if r.Status.IsPass() {
		t.Error("unknown must not count as pass")
	}
}

// Cancellation is an external abort, not a budget: the verdict stays
// StatusError so callers that discard canceled results keep doing so.
func TestCancellationStaysError(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	r := VerifySource(ctx, nl, "rst == 1 |=> count == 0", Options{})
	if r.Status != StatusError {
		t.Fatalf("canceled verify: status %v, want error", r.Status)
	}
	if !errors.Is(r.Err, context.Canceled) {
		t.Fatalf("canceled verify: err %v, want Canceled", r.Err)
	}
}

func TestBatchDeadlineReturnsUnknown(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()

	props := []string{"rst == 1 |=> count == 0", "en == 1 |=> count == 0"}
	out := VerifyAll(ctx, nl, props, Options{})
	if len(out) != len(props) {
		t.Fatalf("got %d results, want %d", len(out), len(props))
	}
	for i, r := range out {
		if r.Status != StatusUnknown {
			t.Errorf("result %d: status %v, want unknown", i, r.Status)
		}
		if !errors.Is(r.Err, context.DeadlineExceeded) {
			t.Errorf("result %d: err %v, want DeadlineExceeded", i, r.Err)
		}
	}
}

func TestCtxResultClassification(t *testing.T) {
	if r := ctxResult(context.DeadlineExceeded); r.Status != StatusUnknown {
		t.Errorf("DeadlineExceeded: status %v, want unknown", r.Status)
	}
	if r := ctxResult(context.Canceled); r.Status != StatusError {
		t.Errorf("Canceled: status %v, want error", r.Status)
	}
	if got := StatusUnknown.String(); got != "unknown" {
		t.Errorf("StatusUnknown.String() = %q, want %q", got, "unknown")
	}
}
