package fpv

import (
	"context"
	"testing"

	"assertionbench/internal/sim"
	"assertionbench/internal/sva"
	"assertionbench/internal/vstatic"
)

// sweptSrc has two provably constant registers next to live logic: en
// can only re-assert itself (and powers on zero), dead can only absorb
// en. cnt free-runs, so the design is not trivially constant overall.
const sweptSrc = `
module swept(clk, rst, req, en, cnt, dead);
input clk, rst, req;
output en;
output [3:0] cnt;
output dead;
reg en;
reg [3:0] cnt;
reg dead;
always @(posedge clk) en <= en & req;
always @(posedge clk)
  if (rst) cnt <= 4'b0;
  else cnt <= cnt + 1;
always @(posedge clk) dead <= dead | (en & req);
endmodule
`

func TestStaticDischargeVacuous(t *testing.T) {
	nl := elab(t, sweptSrc, "swept")
	r := verify(t, nl, "en == 1 |-> cnt == 0")
	if r.Status != StatusVacuous || !r.Static {
		t.Fatalf("impossible antecedent: status %v static %v (err=%v), want statically vacuous", r.Status, r.Static, r.Err)
	}
	if !r.Exhaustive {
		t.Error("a static vacuity discharge is a closed-form proof, must report Exhaustive")
	}
	if r.NonVacuous {
		t.Error("vacuous discharge must not claim a non-vacuity witness")
	}
}

func TestStaticDischargeProven(t *testing.T) {
	nl := elab(t, sweptSrc, "swept")
	r := verify(t, nl, "cnt <= 100 |-> en == 0")
	if r.Status != StatusProven || !r.Static {
		t.Fatalf("tautological implication: status %v static %v (err=%v), want statically proven", r.Status, r.Static, r.Err)
	}
	if !r.Exhaustive || !r.NonVacuous {
		t.Errorf("static proof must be exhaustive and non-vacuous, got Exhaustive=%v NonVacuous=%v", r.Exhaustive, r.NonVacuous)
	}
}

// TestStaticRefutationWitness checks the static CEX path end-to-end:
// the consequent is impossible and the antecedent fires on the
// zero-stimulus trajectory, so the pass must fabricate a concrete
// counter-example — and that counter-example must replay as a real
// violation on the event-driven simulator at the cycle it claims.
func TestStaticRefutationWitness(t *testing.T) {
	nl := elab(t, sweptSrc, "swept")
	prop := "cnt <= 100 |-> dead == 1"
	r := verify(t, nl, prop)
	if r.Status != StatusCEX || !r.Static {
		t.Fatalf("impossible consequent: status %v static %v (err=%v), want static counter-example", r.Status, r.Static, r.Err)
	}
	if r.Exhaustive {
		t.Error("a single fabricated witness is not an exhaustive search, must not report Exhaustive")
	}
	if r.CEX == nil {
		t.Fatal("StatusCEX without a counter-example")
	}
	for tc, in := range r.CEX.Inputs {
		for _, v := range in {
			if v != 0 {
				t.Fatalf("static witness must be the zero-stimulus trajectory, cycle %d carries %v", tc, in)
			}
		}
	}
	// Replay: drive the recorded stimulus through the simulator and run
	// the monitor over the sampled trace.
	a, err := sva.Parse(prop)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(nl)
	var sampled [][]uint64
	for tc, in := range r.CEX.Inputs {
		if err := s.SetInputs(in); err != nil {
			t.Fatalf("cycle %d: %v", tc, err)
		}
		s.Settle()
		sampled = append(sampled, append([]uint64(nil), s.Env()...))
		s.Step()
	}
	violations, _, err := CheckTrace(nl, a, sim.TraceFromSamples(nl, sampled))
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) == 0 {
		t.Fatal("static counter-example does not replay as a violation")
	}
	if v := violations[0]; v.ViolationCycle != r.CEX.ViolationCycle || v.AttemptCycle != r.CEX.AttemptCycle {
		t.Fatalf("replay violates at cycle %d (attempt %d), CEX claims %d (%d)",
			v.ViolationCycle, v.AttemptCycle, r.CEX.ViolationCycle, r.CEX.AttemptCycle)
	}
}

// TestStaticFallThrough: a property the lattice cannot decide must reach
// the search untouched and report Static == false.
func TestStaticFallThrough(t *testing.T) {
	nl := elab(t, sweptSrc, "swept")
	r := verify(t, nl, "req == 1 |=> cnt != 0")
	if r.Static {
		t.Fatalf("input-dependent property was statically discharged: %v", r.Status)
	}
	if r.Status != StatusCEX {
		t.Fatalf("status %v (err=%v), want a searched counter-example (rst clears cnt after req)", r.Status, r.Err)
	}
}

// TestSweptConeShrinksState: sweeping the constant register out of a
// property's cone must drop its state bit while the structural cone
// keeps it — and both cones must agree with the full design's verdict.
func TestSweptConeShrinksState(t *testing.T) {
	nl := elab(t, sweptSrc, "swept")
	a, err := sva.Parse("(en || cnt == 3) |=> req == 1")
	if err != nil {
		t.Fatal(err)
	}
	c, err := sva.Compile(a, nl)
	if err != nil {
		t.Fatal(err)
	}
	consts := vstatic.For(nl).ConstNets()
	if len(consts) == 0 {
		t.Fatal("analysis found no constant nets in a design with two constant registers")
	}
	structural := nl.ConeFor(c.SupportNets())
	swept := nl.ConeForSwept(c.SupportNets(), consts)
	if structural.Identity || swept.Identity {
		t.Fatalf("cones unexpectedly identity: structural=%v swept=%v", structural.Identity, swept.Identity)
	}
	sb, wb := structural.Reduced.StateBits(), swept.Reduced.StateBits()
	if wb >= sb {
		t.Fatalf("swept cone has %d state bits, structural %d: sweeping the constant register saved nothing", wb, sb)
	}
	if en := swept.Reduced.NetByName("en"); en == nil {
		t.Fatal("swept cone dropped the en net itself; properties must still be able to read it")
	} else if en.IsReg {
		t.Error("swept en still occupies a register slot")
	}
}

// TestStaticModeVerdictEquality: on properties the pass cannot discharge,
// Static=auto (swept cones) and Static=off (pure search) must produce
// the same verdict, non-vacuity and exhaustiveness.
func TestStaticModeVerdictEquality(t *testing.T) {
	nl := elab(t, sweptSrc, "swept")
	props := []string{
		"(en || cnt == 3) |=> req == 1",
		"req == 1 |=> cnt != 0",
		"rst == 1 |=> cnt == 0",
		"cnt == 5 |-> ##1 (cnt == 6 || rst)",
		"$rose(req) |-> ##[0:2] cnt != 9",
	}
	e := NewEngine()
	ctx := context.Background()
	for _, p := range props {
		auto := e.VerifySource(ctx, nl, p, Options{Static: StaticAuto})
		off := e.VerifySource(ctx, nl, p, Options{Static: StaticOff})
		if off.Static {
			t.Fatalf("%q: Static=off produced a static discharge", p)
		}
		if auto.Status != off.Status || auto.NonVacuous != off.NonVacuous || auto.Exhaustive != off.Exhaustive {
			t.Errorf("%q: auto (status %v nv=%v exh=%v) vs off (status %v nv=%v exh=%v)",
				p, auto.Status, auto.NonVacuous, auto.Exhaustive, off.Status, off.NonVacuous, off.Exhaustive)
		}
	}
}

// refinedSrc: busy clears under reset and otherwise follows the free
// input req — not globally constant, so only the antecedent-refined
// walk can discharge reset-shaped properties about it.
const refinedSrc = `
module refined(input clk, input rst, input req, output reg busy);
always @(posedge clk)
  if (rst) busy <= 1'b0;
  else busy <= req;
endmodule
`

// TestRefinedStaticProof: the canonical reset property discharges via
// the antecedent-refined walk plus a concrete non-vacuity witness (the
// deterministic reset-driving candidate traces fire rst), and the
// static verdict matches a pure search bit for bit.
func TestRefinedStaticProof(t *testing.T) {
	nl := elab(t, refinedSrc, "refined")
	r := verify(t, nl, "rst == 1 |=> busy == 0")
	if r.Status != StatusProven || !r.Static {
		t.Fatalf("reset property: status %v static %v (err=%v), want statically proven", r.Status, r.Static, r.Err)
	}
	if !r.Exhaustive || !r.NonVacuous {
		t.Errorf("refined static proof must be exhaustive and non-vacuous, got Exhaustive=%v NonVacuous=%v", r.Exhaustive, r.NonVacuous)
	}
	off := VerifySource(context.Background(), nl, "rst == 1 |=> busy == 0", Options{Static: StaticOff})
	if off.Status != StatusProven || off.Static {
		t.Fatalf("pure search disagrees: status %v static %v", off.Status, off.Static)
	}
}

// TestRefinedRefutationFallsThrough: the refined walk statically
// refutes the property, but the zero-stimulus witness never fires the
// antecedent (rst stays low), so the pass must fall through and let the
// engine produce the searched counter-example.
func TestRefinedRefutationFallsThrough(t *testing.T) {
	nl := elab(t, refinedSrc, "refined")
	r := verify(t, nl, "rst == 1 |=> busy == 1")
	if r.Status != StatusCEX || r.Static {
		t.Fatalf("refuted reset property: status %v static %v (err=%v), want searched CEX", r.Status, r.Static, r.Err)
	}
}

// TestRefinedContradictionVacuous: antecedent atoms that are satisfiable
// one by one but jointly contradictory are caught by the refinement
// meet, not by any single-step truth check.
func TestRefinedContradictionVacuous(t *testing.T) {
	nl := elab(t, refinedSrc, "refined")
	r := verify(t, nl, "rst == 1 && rst == 0 |-> busy == 0")
	if r.Status != StatusVacuous || !r.Static || !r.Exhaustive {
		t.Fatalf("contradictory antecedent: status %v static %v exh %v (err=%v), want static exhaustive vacuity",
			r.Status, r.Static, r.Exhaustive, r.Err)
	}
}
