// Package fpv is a formal property verification engine for elaborated
// Verilog netlists and the paper's SVA subset. It substitutes for the
// commercial JasperGold engine in the evaluation pipeline (Fig. 4 / Fig. 8
// of the paper): explicit-state breadth-first reachability over the
// product of the design's state space and the assertion's monitor
// automaton, with vacuity detection and counter-example extraction.
//
// When the design's data-input width or the product state count exceeds
// configured bounds, the engine degrades to bounded exploration (sampled
// inputs and/or depth-bounded search) the way industrial BMC flows do; a
// property that survives bounded search is reported StatusBoundedPass.
package fpv

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"assertionbench/internal/sva"
	"assertionbench/internal/verilog"
)

// Status is the verdict lattice of the paper's Fig. 2, extended with the
// bounded verdict.
type Status int

// Verdicts.
const (
	// StatusProven: exhaustive search closed with no violation and the
	// antecedent reachable (the "Valid" outcome of Fig. 2).
	StatusProven Status = iota
	// StatusVacuous: exhaustive search closed, no violation, but the
	// antecedent (pre-condition) is unreachable.
	StatusVacuous
	// StatusBoundedPass: bounded search found no violation.
	StatusBoundedPass
	// StatusCEX: a counter-example trace refutes the assertion.
	StatusCEX
	// StatusError: the assertion failed to parse or type-check.
	StatusError
	// StatusUnknown: a verification budget (a context deadline carried by
	// ctx) expired before the search decided the property. Unlike
	// StatusError-with-ctx.Err() — which marks an externally canceled call
	// whose results a caller should discard — an unknown verdict is a
	// well-defined anytime outcome: the property was neither proven nor
	// refuted within the budget, and a rerun with a larger budget (warm
	// caches and cost journal make it cheaper) converges to the
	// unbudgeted verdict.
	StatusUnknown
)

func (s Status) String() string {
	switch s {
	case StatusProven:
		return "proven"
	case StatusVacuous:
		return "vacuous"
	case StatusBoundedPass:
		return "bounded_pass"
	case StatusCEX:
		return "cex"
	case StatusError:
		return "error"
	case StatusUnknown:
		return "unknown"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// IsPass reports whether the verdict counts toward the paper's Pass
// metric (valid + vacuous outcomes).
func (s Status) IsPass() bool {
	return s == StatusProven || s == StatusVacuous || s == StatusBoundedPass
}

// CEX is a counter-example: the input stimulus per cycle plus the sampled
// values of every net along the refuting path.
type CEX struct {
	// Inputs[t] is the data-input vector (netlist input order) at cycle t.
	Inputs [][]uint64
	// Sampled[t] is the full sampled environment at cycle t.
	Sampled [][]uint64
	// ViolationCycle is the cycle at which the consequent failed.
	ViolationCycle int
	// AttemptCycle is the cycle at which the violated attempt started.
	AttemptCycle int
}

// Format renders the counter-example against the netlist for diagnostics.
func (c *CEX) Format(nl *verilog.Netlist) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "counter-example: attempt @%d violated @%d\n", c.AttemptCycle, c.ViolationCycle)
	widest := 5
	for _, n := range nl.Nets {
		if len(n.Name) > widest {
			widest = len(n.Name)
		}
	}
	fmt.Fprintf(&sb, "%-*s", widest+2, "cycle")
	for t := range c.Sampled {
		fmt.Fprintf(&sb, "%5d", t)
	}
	sb.WriteByte('\n')
	for _, n := range nl.Nets {
		fmt.Fprintf(&sb, "%-*s", widest+2, n.Name)
		for t := range c.Sampled {
			fmt.Fprintf(&sb, "%5x", c.Sampled[t][n.Index])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Result is the outcome of verifying one assertion.
type Result struct {
	Status Status
	// Err explains StatusError results.
	Err error
	// CEX is non-nil for StatusCEX.
	CEX *CEX
	// NonVacuous reports whether any explored path matched the antecedent.
	NonVacuous bool
	// Exhaustive reports whether the product space was fully closed.
	Exhaustive bool
	// States is the number of distinct product states visited.
	States int
	// Depth is the deepest cycle reached.
	Depth int
	// Static reports that the verdict was discharged by the static
	// pre-verification pass (internal/vstatic) without any state-space
	// search. Static results are always sound: proofs and vacuity come
	// from the abstract fixpoint, and counter-examples are confirmed by
	// concrete replay before being reported.
	Static bool
}

// Options configure the engine.
type Options struct {
	// MaxProductStates bounds the BFS frontier before degrading to
	// bounded mode. Default 200000.
	MaxProductStates int
	// MaxInputBits is the widest data-input vector enumerated
	// exhaustively per state. Default 12.
	MaxInputBits int
	// MaxInputSamples is the number of input vectors tried per state when
	// enumeration is infeasible. Default 24.
	MaxInputSamples int
	// RandomRuns and RandomDepth configure the random-walk violation hunt
	// appended in bounded mode. Defaults 256 and 64.
	RandomRuns  int
	RandomDepth int
	// Seed makes bounded exploration deterministic. Default 1.
	Seed int64
	// Backend selects the execution engine for the search's hot loops:
	// BackendCompiled (the default) runs design and monitor on the
	// lowered register-machine programs, BackendInterp on the reference
	// tree-walk. Verdicts are bit-identical (dverify oracle 4).
	Backend string
	// Batch selects whether multi-assertion entry points (VerifyAll,
	// VerifyBatch callers) amortize design-state exploration across the
	// batch through a shared reachability graph: BatchAuto (the default)
	// batches, BatchOff forces the per-property reference search.
	// Verdicts are bit-identical either way (dverify oracle 5).
	Batch string
	// Cone selects cone-of-influence reduction: ConeAuto (the default)
	// projects each property's search onto the transitive fan-in of its
	// support nets (verilog.Cone), ConeOff explores the full design.
	// Verdicts agree semantically either way — identical when both runs
	// are exhaustive, and any counter-example replays on the full design
	// (dverify oracle 6).
	Cone string
	// Slices selects 64-way bit-parallel exploration of the bounded
	// random hunt and graph edge expansion: SlicesAuto (the default)
	// runs 64 stimulus trajectories per pass through the design on the
	// bit-sliced machine where the design supports it, SlicesOff forces
	// the scalar reference loops. Verdicts are bit-identical either way
	// (dverify oracle 7); only the compiled backend slices.
	Slices string
	// Static selects the abstract-interpretation pre-verification pass:
	// StaticAuto (the default) classifies each property against the
	// design's ternary-lattice fixpoint before any search — statically
	// decided properties return without exploring a single state, and
	// proven-constant nets sharpen cone-of-influence reduction —
	// StaticOff skips the pass entirely. Verdicts agree semantically
	// either way (dverify oracle 8): static proofs/vacuity match what
	// exhaustive search would conclude, and static counter-examples are
	// confirmed by concrete replay before being reported.
	Static string
}

// Execution backends.
const (
	BackendCompiled = "compiled"
	BackendInterp   = "interp"
)

// ValidBackend reports whether s names an execution backend ("" selects
// the default). Callers that accept user input (CLIs, the evaluation
// runner) check this up front so a typo fails fast instead of turning
// every verdict into StatusError.
func ValidBackend(s string) bool {
	return s == "" || s == BackendCompiled || s == BackendInterp
}

// Batching modes for Options.Batch.
const (
	BatchAuto = "auto"
	BatchOff  = "off"
)

// ValidBatch reports whether s names a batching mode ("" selects the
// default, BatchAuto).
func ValidBatch(s string) bool {
	return s == "" || s == BatchAuto || s == BatchOff
}

// Cone-of-influence modes for Options.Cone.
const (
	ConeAuto = "auto"
	ConeOff  = "off"
)

// ValidCone reports whether s names a cone mode ("" selects the default,
// ConeAuto).
func ValidCone(s string) bool {
	return s == "" || s == ConeAuto || s == ConeOff
}

// Bit-slicing modes for Options.Slices.
const (
	SlicesAuto = "auto"
	SlicesOff  = "off"
)

// ValidSlices reports whether s names a slicing mode ("" selects the
// default, SlicesAuto).
func ValidSlices(s string) bool {
	return s == "" || s == SlicesAuto || s == SlicesOff
}

// Static pre-verification modes for Options.Static.
const (
	StaticAuto = "auto"
	StaticOff  = "off"
)

// ValidStatic reports whether s names a static-analysis mode ("" selects
// the default, StaticAuto).
func ValidStatic(s string) bool {
	return s == "" || s == StaticAuto || s == StaticOff
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.MaxProductStates == 0 {
		o.MaxProductStates = 200000
	}
	if o.MaxInputBits == 0 {
		o.MaxInputBits = 12
	}
	if o.MaxInputSamples == 0 {
		o.MaxInputSamples = 24
	}
	if o.RandomRuns == 0 {
		o.RandomRuns = 256
	}
	if o.RandomDepth == 0 {
		o.RandomDepth = 64
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Backend == "" {
		o.Backend = BackendCompiled
	}
	if o.Batch == "" {
		o.Batch = BatchAuto
	}
	if o.Cone == "" {
		o.Cone = ConeAuto
	}
	if o.Slices == "" {
		o.Slices = SlicesAuto
	}
	if o.Static == "" {
		o.Static = StaticAuto
	}
	return o
}

// ctxResult classifies a context error into the result an interrupted
// search returns: an expired deadline is a budget running out — a
// legitimate anytime outcome, StatusUnknown — while a cancellation is an
// external abort and stays StatusError, so existing callers that treat
// canceled verdicts as discardable keep doing so. Every search loop in
// the engine polls its context (each 64 BFS expansions, each hunt run),
// so a budgeted call stops within microseconds of its deadline.
func ctxResult(err error) Result {
	if errors.Is(err, context.DeadlineExceeded) {
		return Result{Status: StatusUnknown, Err: err}
	}
	return Result{Status: StatusError, Err: err}
}

// Verify parses nothing: it verifies an already-parsed assertion. The
// search loops poll ctx; a canceled call returns StatusError with Err set
// to ctx.Err(), and a call whose ctx deadline expired returns
// StatusUnknown (the budgeted early-out).
func Verify(ctx context.Context, nl *verilog.Netlist, a *sva.Assertion, opt Options) Result {
	c, err := sva.Compile(a, nl)
	if err != nil {
		return Result{Status: StatusError, Err: err}
	}
	return VerifyCompiled(ctx, nl, c, opt)
}

// VerifySource parses and verifies an assertion given as text.
func VerifySource(ctx context.Context, nl *verilog.Netlist, src string, opt Options) Result {
	a, err := sva.Parse(src)
	if err != nil {
		return Result{Status: StatusError, Err: err}
	}
	return Verify(ctx, nl, a, opt)
}

// VerifyAll verifies a batch of assertion texts, returning one result per
// input in order. The batch shares one reusable engine.
func VerifyAll(ctx context.Context, nl *verilog.Netlist, srcs []string, opt Options) []Result {
	return NewEngine().VerifyAll(ctx, nl, srcs, opt)
}
