package fpv

import (
	"sync"

	"assertionbench/internal/verilog"
)

// The shared reachability layer behind VerifyBatch. All properties of a
// batch share one exploration of the design's state space — bit-packed
// register states, input-vector-labelled edges, and per-edge sampled
// values for the union of the batch's support nets — after which each
// property is decided by a monitor-only product search over the graph,
// with zero netlist re-simulation of states another property (or a
// previous run) already explored. Bounded mode adds a shared random-hunt
// trace, simulated once per run for the whole batch.
//
// Exploration is demand-driven: a node's edges are simulated the first
// time any property's product search pops it, and hunt runs the first
// time any pending property consumes them, so a batch never does more
// netlist simulation than the costliest single per-property search would
// (it typically does far less, since properties overlap heavily). Graphs
// and hunt traces live in a GraphCache under an explicit memory bound
// with copy-on-write extension: cached entries are immutable, an engine
// that needs more depth clones, extends privately and republishes.
//
// Equivalence with the per-property reference search rests on one
// invariant: the input vectors tried from a design state are a pure
// function of (Options.Seed, state) — see sampleSeed — and hunt stimulus
// a pure function of (Options.Seed, run) — see huntSeed. The product
// space reachable through graph edges is then exactly the product space
// the per-property BFS explores, in the same discovery order, and the
// shared hunt trace is byte-identical to every per-property hunt.
// dverify oracle 5 cross-checks the whole construction per fuzzed
// scenario, full result identity down to the CEX stimulus.

// Graph is one design's (partially explored) reachability graph: nodes
// are bit-packed register states (node 0 is the all-zero power-on
// state); an expanded node carries one edge per input vector tried from
// it, in vector order. Graphs published to a cache are immutable and
// safe to share; extension happens on private clones.
type Graph struct {
	// Support is the sorted union of support-net indices whose sampled
	// (pre-edge, settled) values every edge records.
	Support []int
	// PackWords is the per-node width of Packed in 64-bit words.
	PackWords int
	// NumInputs is the design's data-input count (edge vector width).
	NumInputs int
	// Enumerate marks a graph whose edges enumerate every input vector;
	// bounded graphs store their per-state sampled vectors in Vecs.
	Enumerate bool
	// EdgesPerNode is the constant per-node edge count: the enumeration
	// size, or MaxInputSamples+2 corner/sampled vectors.
	EdgesPerNode int

	// Packed holds node i's registers at [i*PackWords, (i+1)*PackWords).
	Packed []uint64
	// EdgeOff[i] indexes node i's first edge (-1 while unexpanded); its
	// EdgesPerNode edges are contiguous.
	EdgeOff []int32
	// Dst[e] is edge e's destination node.
	Dst []int32
	// Rows holds edge e's sampled support values at [e*len(Support), ...).
	Rows []uint64
	// Vecs holds edge e's input vector at [e*NumInputs, ...) for bounded
	// graphs (nil when Enumerate).
	Vecs []uint64

	// Expanded counts expanded nodes; Nodes counts all discovered states.
	Expanded int
	Nodes    int
}

func (g *Graph) node(i int32) []uint64 {
	return g.Packed[int(i)*g.PackWords : (int(i)+1)*g.PackWords]
}

func (g *Graph) row(e int32) []uint64 {
	n := len(g.Support)
	return g.Rows[int(e)*n : (int(e)+1)*n]
}

func (g *Graph) vec(e int32) []uint64 {
	return g.Vecs[int(e)*g.NumInputs : (int(e)+1)*g.NumInputs]
}

// Bytes estimates the graph's retained memory for the cache bound.
func (g *Graph) Bytes() int64 {
	return int64(8*(len(g.Packed)+len(g.Rows)+len(g.Vecs)+len(g.Support)) +
		4*(len(g.EdgeOff)+len(g.Dst)) + 96)
}

// clone deep-copies the graph for private extension.
func (g *Graph) clone() *Graph {
	c := *g
	c.Packed = append([]uint64(nil), g.Packed...)
	c.EdgeOff = append([]int32(nil), g.EdgeOff...)
	c.Dst = append([]int32(nil), g.Dst...)
	c.Rows = append([]uint64(nil), g.Rows...)
	c.Vecs = append([]uint64(nil), g.Vecs...)
	if g.Vecs == nil {
		c.Vecs = nil
	}
	return &c
}

// newGraph starts an unexplored graph holding only the power-on state.
func (e *Engine) newGraph(union []int, enumerate bool) *Graph {
	edges := e.opt.MaxInputSamples + 2
	if enumerate {
		edges = len(e.enumInputVectors())
	}
	g := &Graph{
		Support:      union,
		PackWords:    len(e.packBuf),
		NumInputs:    len(e.nl.Inputs),
		Enumerate:    enumerate,
		EdgesPerNode: edges,
		EdgeOff:      []int32{-1},
		Nodes:        1,
	}
	zero := make([]uint64, len(e.nl.Regs))
	g.Packed = append(g.Packed, e.packRegs(zero)...)
	return g
}

// syncGraphVisited (re)builds the engine's packed-state index for g, so
// demand-driven expansion can dedup newly discovered states against the
// graph's existing nodes. Cheap relative to the simulation it brokers;
// called once per batch (or after adopting a cloned graph).
func (e *Engine) syncGraphVisited(g *Graph) {
	e.gVisited.reset(g.PackWords * 8)
	for i := 0; i < g.Nodes; i++ {
		k, h := e.packedKeyHash(g.node(int32(i)))
		e.gVisited.insert(h, k)
	}
	e.gVisitedFor = g
}

// expandNode simulates node u's input vectors, appending its edges (and
// any newly discovered states) to the graph. The caller owns g. A
// simulator load failure (impossible by construction — vector widths
// match the netlist) surfaces as an error, exactly as the per-property
// search treats it, so a half-expanded node can never enter the cache.
func (e *Engine) expandNode(g *Graph, u int32) error {
	if e.gVisitedFor != g {
		e.syncGraphVisited(g)
	}
	var vecs [][]uint64
	if g.Enumerate {
		vecs = e.enumInputVectors()
	} else {
		vecs = e.sampleInputVectors(sampleSeed(e.opt.Seed, g.node(u)))
	}
	// Unpack the node's registers to drive the simulator.
	e.unpackRegs(g.node(u), e.regBuf)
	cur := append(e.expandRegs[:0], e.regBuf...)
	e.expandRegs = cur
	mark := len(g.Dst)
	g.EdgeOff[u] = int32(mark)
	for _, in := range vecs {
		if err := e.sim.LoadStateWithInputs(cur, in); err != nil {
			// Roll the half-expanded node back entirely.
			g.EdgeOff[u] = -1
			g.Dst = g.Dst[:mark]
			g.Rows = g.Rows[:mark*len(g.Support)]
			if !g.Enumerate {
				g.Vecs = g.Vecs[:mark*g.NumInputs]
			}
			return err
		}
		env := e.sim.Env()
		for _, idx := range g.Support {
			g.Rows = append(g.Rows, env[idx])
		}
		if !g.Enumerate {
			g.Vecs = append(g.Vecs, in...)
		}
		e.sim.Step()
		e.sim.CopyStateInto(e.regBuf)
		k, h := e.packedKeyHash(e.packRegs(e.regBuf))
		ord, existed := e.gVisited.insert(h, k)
		if !existed {
			g.Packed = append(g.Packed, e.packBuf...)
			g.EdgeOff = append(g.EdgeOff, -1)
			g.Nodes++
		}
		g.Dst = append(g.Dst, int32(ord))
	}
	g.Expanded++
	return nil
}

// unpackRegs reverses packRegs into dst (one value per register).
func (e *Engine) unpackRegs(packed []uint64, dst []uint64) {
	pos := 0
	for i, w := range e.regWidths {
		word, off := pos>>6, uint(pos&63)
		v := packed[word] >> off
		if off+uint(w) > 64 {
			v |= packed[word+1] << (64 - off)
		}
		dst[i] = v & verilog.WidthMask(w)
		pos += w
	}
}

// HuntTrace is the shared bounded-mode random hunt: runs of RandomDepth
// cycles simulated on demand (RunsDone of Runs so far), recording each
// cycle's stimulus and the sampled values of the support union, so every
// unresolved property of a batch replays the exact trace the
// per-property hunt would drive. Published traces are immutable;
// extension happens on private clones.
type HuntTrace struct {
	Runs, Depth int
	RunsDone    int
	// Seed is the stimulus stream's seed: hunt traces always depend on
	// it even when their graph does not (enumerate-mode keys zero the
	// seed), so lookups must validate it.
	Seed      int64
	Support   []int
	NumInputs int
	// Inputs and Rows are (run*Depth+t)-major, len RunsDone*Depth*width.
	Inputs []uint64
	Rows   []uint64
}

func (h *HuntTrace) input(run, t int) []uint64 {
	e := run*h.Depth + t
	return h.Inputs[e*h.NumInputs : (e+1)*h.NumInputs]
}

func (h *HuntTrace) row(run, t int) []uint64 {
	e := run*h.Depth + t
	n := len(h.Support)
	return h.Rows[e*n : (e+1)*n]
}

// Bytes estimates the trace's retained memory for the cache bound.
func (h *HuntTrace) Bytes() int64 {
	return int64(8*(len(h.Inputs)+len(h.Rows)+len(h.Support)) + 64)
}

func (h *HuntTrace) clone() *HuntTrace {
	c := *h
	c.Inputs = append([]uint64(nil), h.Inputs...)
	c.Rows = append([]uint64(nil), h.Rows...)
	return &c
}

// extendHunt simulates runs [ht.RunsDone, upto] into the trace — the
// same per-run splitmix stimulus streams the per-property hunt draws.
// The caller owns ht.
func (e *Engine) extendHunt(ht *HuntTrace, upto int) {
	vals := make([]uint64, ht.NumInputs)
	s := e.hunt
	for run := ht.RunsDone; run <= upto; run++ {
		s.ResetState()
		sm := sm64(huntSeed(e.opt.Seed, run))
		for t := 0; t < ht.Depth; t++ {
			e.fillStimulus(&sm, t, vals)
			ht.Inputs = append(ht.Inputs, vals...)
			// SetInputs cannot fail (vals is sized to the netlist); keep
			// Inputs/Rows aligned by construction.
			_ = s.SetInputs(vals)
			s.Settle()
			env := s.Env()
			for _, idx := range ht.Support {
				ht.Rows = append(ht.Rows, env[idx])
			}
			s.Step()
		}
		ht.RunsDone = run + 1
	}
}

// packedKeyHash encodes packed register words into the engine's reused
// key buffer with the probing hash, for the graph's exact design-state
// dedup.
func (e *Engine) packedKeyHash(packed []uint64) ([]byte, uint64) {
	buf := e.keyBuf[:0]
	h := uint64(stateHashSeed)
	for _, v := range packed {
		buf = le64Append(buf, v)
		h = stateMix(h, v)
	}
	e.keyBuf = buf
	return buf, h
}

// --- cache ---

// DefaultGraphMemory bounds a zero-value GraphCache's retained bytes.
const DefaultGraphMemory = 64 << 20

// graphKey identifies one cached exploration. The netlist pointer stands
// in for (design name, source hash): the elaboration cache interns
// netlists per source hash, so a source change yields a new pointer and
// the stale graph simply ages out of the LRU. The key deliberately
// excludes every option that does not change graph content: search
// budgets (exploration is demand-driven with copy-on-write extension,
// so a deeper budget extends the same graph), and — for enumerate-mode
// graphs, which sample nothing — the seed and sample count (those are
// zeroed by Engine.graphKey; hunt traces, which always depend on the
// seed, record it themselves and are validated on lookup).
type graphKey struct {
	nl         *verilog.Netlist
	backend    string
	enumerate  bool
	maxSamples int
	seed       int64
}

type graphEntry struct {
	key        graphKey
	g          *Graph
	hunt       *HuntTrace
	bytes      int64
	prev, next *graphEntry
}

// GraphCache holds reachability graphs (and their hunt traces) under an
// explicit memory bound with LRU eviction. The zero value is ready to
// use with the DefaultGraphMemory bound; it is safe for concurrent use.
// Entries are immutable: engines that need deeper exploration clone,
// extend privately and republish (store replaces in place). A cached
// graph whose support union lacks nets a new batch reads is discarded
// and rebuilt over the merged union, so unions only grow per key.
type GraphCache struct {
	mu       sync.Mutex
	maxBytes int64
	total    int64
	m        map[graphKey]*graphEntry
	head     *graphEntry // most recently used
	tail     *graphEntry
}

// SetMaxBytes sets the memory bound (0 restores DefaultGraphMemory) and
// evicts immediately if the cache is over it.
func (c *GraphCache) SetMaxBytes(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxBytes = n
	c.evictOver()
}

func (c *GraphCache) limit() int64 {
	if c.maxBytes <= 0 {
		return DefaultGraphMemory
	}
	return c.maxBytes
}

// Len reports how many explorations the cache holds.
func (c *GraphCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Bytes reports the cache's current retained estimate.
func (c *GraphCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Purge empties the cache.
func (c *GraphCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = nil
	c.head, c.tail = nil, nil
	c.total = 0
}

// lookup returns the cached graph and hunt trace for key if the graph's
// support union covers union; on a union miss it returns the stale
// support set so the caller can rebuild over the merge.
func (c *GraphCache) lookup(key graphKey, union []int) (*Graph, *HuntTrace, []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.m[key]
	if e == nil {
		return nil, nil, nil
	}
	if !subsetOf(union, e.g.Support) {
		return nil, nil, e.g.Support
	}
	c.touch(e)
	return e.g, e.hunt, nil
}

// store inserts (or replaces) key's exploration and evicts LRU entries
// beyond the memory bound. ht may be nil (no hunt ran yet); a hunt whose
// budget mismatches the verifying options is the caller's to discard.
func (c *GraphCache) store(key graphKey, g *Graph, ht *HuntTrace) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old := c.m[key]; old != nil {
		c.remove(old)
	}
	if c.m == nil {
		c.m = make(map[graphKey]*graphEntry)
	}
	e := &graphEntry{key: key, g: g, hunt: ht, bytes: g.Bytes()}
	if ht != nil {
		e.bytes += ht.Bytes()
	}
	c.m[key] = e
	c.attach(e)
	c.total += e.bytes
	c.evictOver()
}

func (c *GraphCache) touch(e *graphEntry) {
	if c.head == e {
		return
	}
	c.detach(e)
	c.attach(e)
}

func (c *GraphCache) attach(e *graphEntry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *GraphCache) detach(e *graphEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *GraphCache) remove(e *graphEntry) {
	c.detach(e)
	delete(c.m, e.key)
	c.total -= e.bytes
}

func (c *GraphCache) evictOver() {
	for c.total > c.limit() && c.tail != nil {
		c.remove(c.tail)
	}
}

// subsetOf reports whether every element of a (sorted) appears in b
// (sorted).
func subsetOf(a, b []int) bool {
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j == len(b) || b[j] != x {
			return false
		}
		j++
	}
	return true
}

// mergeSorted unions two sorted int slices.
func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j == len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i == len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
