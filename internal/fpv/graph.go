package fpv

import (
	"fmt"
	"sync"

	"assertionbench/internal/astore"
	"assertionbench/internal/verilog"
)

// The shared reachability layer behind VerifyBatch. All properties of a
// batch share one exploration of the design's state space — bit-packed
// register states, input-vector-labelled edges, and per-edge sampled
// values for the union of the batch's support nets — after which each
// property is decided by a monitor-only product search over the graph,
// with zero netlist re-simulation of states another property (or a
// previous run) already explored. Bounded mode adds a shared random-hunt
// trace, simulated once per run for the whole batch.
//
// Exploration is demand-driven: a node's edges are simulated the first
// time any property's product search pops it, and hunt runs the first
// time any pending property consumes them, so a batch never does more
// netlist simulation than the costliest single per-property search would
// (it typically does far less, since properties overlap heavily). Graphs
// and hunt traces live in a GraphCache under an explicit memory bound
// with copy-on-write extension: cached entries are immutable, an engine
// that needs more depth clones, extends privately and republishes.
//
// Equivalence with the per-property reference search rests on one
// invariant: the input vectors tried from a design state are a pure
// function of (Options.Seed, state) — see sampleSeed — and hunt stimulus
// a pure function of (Options.Seed, run) — see huntSeed. The product
// space reachable through graph edges is then exactly the product space
// the per-property BFS explores, in the same discovery order, and the
// shared hunt trace is byte-identical to every per-property hunt.
// dverify oracle 5 cross-checks the whole construction per fuzzed
// scenario, full result identity down to the CEX stimulus.

// Graph is one design's (partially explored) reachability graph: nodes
// are bit-packed register states (node 0 is the all-zero power-on
// state); an expanded node carries one edge per input vector tried from
// it, in vector order. Graphs published to a cache are immutable and
// safe to share; extension happens on private clones.
type Graph struct {
	// Support is the sorted union of support-net indices whose sampled
	// (pre-edge, settled) values every edge records.
	Support []int
	// PackWords is the per-node width of Packed in 64-bit words.
	PackWords int
	// NumInputs is the design's data-input count (edge vector width).
	NumInputs int
	// Enumerate marks a graph whose edges enumerate every input vector;
	// bounded graphs store their per-state sampled vectors in Vecs.
	Enumerate bool
	// EdgesPerNode is the constant per-node edge count: the enumeration
	// size, or MaxInputSamples+2 corner/sampled vectors.
	EdgesPerNode int

	// Packed holds node i's registers at [i*PackWords, (i+1)*PackWords).
	Packed []uint64
	// EdgeOff[i] indexes node i's first edge (-1 while unexpanded); its
	// EdgesPerNode edges are contiguous.
	EdgeOff []int32
	// Dst[e] is edge e's destination node.
	Dst []int32
	// Rows holds one support row per representative edge, in Dedup
	// order: dedup index ri's row lives at [ri*len(Support), ...) (see
	// repRow and dedupEdges — duplicate edges share their class's row,
	// so the graph never stores the duplicate bulk).
	Rows []uint64
	// Vecs holds edge e's input vector at [e*NumInputs, ...) for bounded
	// graphs (nil when Enumerate).
	Vecs []uint64
	// Dedup[DedupOff[i] : DedupOff[i]+DedupN[i]] lists node i's
	// representative edges: the first edge of each distinct (destination,
	// support row) class in edge order. A monitor transition depends on
	// nothing but the row, and the child product state on nothing but
	// (destination, monitor state, history), so product searches step
	// once per class — duplicate edges could only repeat the exact same
	// transition (dedupEdges proves the order argument).
	Dedup    []int32
	DedupOff []int32
	DedupN   []int32

	// Expanded counts expanded nodes; Nodes counts all discovered states.
	Expanded int
	Nodes    int
}

func (g *Graph) node(i int32) []uint64 {
	return g.Packed[int(i)*g.PackWords : (int(i)+1)*g.PackWords]
}

// repRow returns the support row of the representative edge at dedup
// index ri (Rows is stored compactly, one row per representative, in
// Dedup order — see dedupEdges).
func (g *Graph) repRow(ri int32) []uint64 {
	n := len(g.Support)
	return g.Rows[int(ri)*n : (int(ri)+1)*n]
}

func (g *Graph) vec(e int32) []uint64 {
	return g.Vecs[int(e)*g.NumInputs : (int(e)+1)*g.NumInputs]
}

// Bytes estimates the graph's retained memory for the cache bound.
func (g *Graph) Bytes() int64 {
	return int64(8*(len(g.Packed)+len(g.Rows)+len(g.Vecs)+len(g.Support)) +
		4*(len(g.EdgeOff)+len(g.Dst)+len(g.Dedup)+len(g.DedupOff)+len(g.DedupN)) + 96)
}

// clone deep-copies the graph for private extension.
func (g *Graph) clone() *Graph {
	c := *g
	c.Packed = append([]uint64(nil), g.Packed...)
	c.EdgeOff = append([]int32(nil), g.EdgeOff...)
	c.Dst = append([]int32(nil), g.Dst...)
	c.Rows = append([]uint64(nil), g.Rows...)
	c.Vecs = append([]uint64(nil), g.Vecs...)
	if g.Vecs == nil {
		c.Vecs = nil
	}
	c.Dedup = append([]int32(nil), g.Dedup...)
	c.DedupOff = append([]int32(nil), g.DedupOff...)
	c.DedupN = append([]int32(nil), g.DedupN...)
	return &c
}

// dedupEdges appends node u's representative-edge list after expansion.
// rows holds the node's freshly simulated support rows, local-edge-major
// (EdgesPerNode × len(Support)); only the representatives' rows are
// retained, appended to g.Rows in Dedup order, so the graph never stores
// the duplicate bulk (an enumerate node's 256 edges typically collapse
// to a handful of classes).
// Walking representatives preserves the full edge walk bit-for-bit: a
// class's members share one row (same monitor outcome, including the
// first-violation decision — if any member violates, every member does,
// so the scalar walk's first violating edge is its class's first
// member) and one destination (same child product state, so the visited
// filter admits the same children in the same first-occurrence order).
func (g *Graph) dedupEdges(u int32, rows []uint64) {
	off := g.EdgeOff[u]
	nSup := len(g.Support)
	start := len(g.Dedup)
	g.DedupOff[u] = int32(start)
outer:
	for le := 0; le < g.EdgesPerNode; le++ {
		e := off + int32(le)
		row := rows[le*nSup : (le+1)*nSup]
		for ri, r := range g.Dedup[start:] {
			if g.Dst[r] != g.Dst[e] {
				continue
			}
			rrow := g.Rows[(start+ri)*nSup : (start+ri+1)*nSup]
			same := true
			for j := 0; j < nSup; j++ {
				if rrow[j] != row[j] {
					same = false
					break
				}
			}
			if same {
				continue outer
			}
		}
		g.Dedup = pushI32(g.Dedup, e)
		g.Rows = pushU64s(g.Rows, row)
	}
	g.DedupN[u] = int32(len(g.Dedup) - start)
}

// pushI32 appends one value with capacity doubling. The graph's arrays
// reach megabytes, where plain append's large-slice growth factor
// re-copies the whole array far more often; doubling keeps total copy
// work linear with a small constant (profiled: slice growth was ~15% of
// a cold full-corpus pass before these helpers).
func pushI32(s []int32, v int32) []int32 {
	if len(s) == cap(s) {
		t := make([]int32, len(s), 2*len(s)+16)
		copy(t, s)
		s = t
	}
	return append(s, v)
}

// pushU64s appends a short word run with the same doubling policy
// (extendU64 doubles on growth).
func pushU64s(s, vs []uint64) []uint64 {
	n := len(s)
	s = extendU64(s, len(vs))
	copy(s[n:], vs)
	return s
}

// newGraph starts an unexplored graph holding only the power-on state.
func (e *Engine) newGraph(union []int, enumerate bool) *Graph {
	edges := e.opt.MaxInputSamples + 2
	if enumerate {
		edges = len(e.enumInputVectors())
	}
	g := &Graph{
		Support:      union,
		PackWords:    len(e.packBuf),
		NumInputs:    len(e.nl.Inputs),
		Enumerate:    enumerate,
		EdgesPerNode: edges,
		EdgeOff:      []int32{-1},
		DedupOff:     []int32{-1},
		DedupN:       []int32{0},
		Nodes:        1,
	}
	zero := make([]uint64, len(e.nl.Regs))
	g.Packed = append(g.Packed, e.packRegs(zero)...)
	return g
}

// syncGraphVisited (re)builds the engine's packed-state index for g, so
// demand-driven expansion can dedup newly discovered states against the
// graph's existing nodes. Cheap relative to the simulation it brokers;
// called once per batch (or after adopting a cloned graph).
func (e *Engine) syncGraphVisited(g *Graph) {
	e.gVisited.reset(g.PackWords * 8)
	for i := 0; i < g.Nodes; i++ {
		k, h := e.packedKeyHash(g.node(int32(i)))
		e.gVisited.insert(h, k)
	}
	e.gVisitedFor = g
}

// expandNode simulates node u's input vectors, appending its edges (and
// any newly discovered states) to the graph. The caller owns g. A
// simulator load failure (impossible by construction — vector widths
// match the netlist) surfaces as an error, exactly as the per-property
// search treats it, so a half-expanded node can never enter the cache.
func (e *Engine) expandNode(g *Graph, u int32) error {
	if e.gVisitedFor != g {
		e.syncGraphVisited(g)
	}
	var vecs [][]uint64
	if g.Enumerate {
		vecs = e.enumInputVectors()
	} else {
		vecs = e.sampleInputVectors(sampleSeed(e.opt.Seed, g.node(u)))
	}
	// Unpack the node's registers to drive the simulator.
	e.unpackRegs(g.node(u), e.regBuf)
	cur := append(e.expandRegs[:0], e.regBuf...)
	e.expandRegs = cur
	mark := len(g.Dst)
	g.EdgeOff[u] = int32(mark)
	nSup := len(g.Support)
	rows := e.rowScratch(g.EdgesPerNode * nSup)
	if msl := e.slicedGraphMachine(g); msl != nil {
		e.expandNodeSliced(g, msl, cur, vecs, rows)
		g.dedupEdges(u, rows)
		g.Expanded++
		return nil
	}
	for vi, in := range vecs {
		if err := e.sim.LoadStateWithInputs(cur, in); err != nil {
			// Roll the half-expanded node back entirely (rows only live
			// in scratch until dedupEdges, so g.Rows needs no rollback).
			g.EdgeOff[u] = -1
			g.Dst = g.Dst[:mark]
			if !g.Enumerate {
				g.Vecs = g.Vecs[:mark*g.NumInputs]
			}
			return err
		}
		env := e.sim.Env()
		for j, src := range e.supportSrc {
			rows[vi*nSup+j] = env[src]
		}
		if !g.Enumerate {
			g.Vecs = pushU64s(g.Vecs, in)
		}
		e.sim.Step()
		e.sim.CopyStateInto(e.regBuf)
		k, h := e.packedKeyHash(e.packRegs(e.regBuf))
		ord, existed := e.gVisited.insert(h, k)
		if !existed {
			g.Packed = pushU64s(g.Packed, e.packBuf)
			g.EdgeOff = pushI32(g.EdgeOff, -1)
			g.DedupOff = pushI32(g.DedupOff, -1)
			g.DedupN = pushI32(g.DedupN, 0)
			g.Nodes++
		}
		g.Dst = pushI32(g.Dst, int32(ord))
	}
	g.dedupEdges(u, rows)
	g.Expanded++
	return nil
}

// slicedWarmupEdges is the scalar-first warm-up: a graph's first
// expansions run on the scalar simulator, and only once this many edges
// have been simulated does exploration switch to the 64-lane machine.
// Small graphs — quick smoke workloads, trivially-closed properties —
// finish before lane batching amortizes machine compilation and
// per-chunk transposes. Both paths build byte-identical graphs, so the
// switch point is pure heuristic.
const slicedWarmupEdges = 1024

// slicedGraphMachine returns the 64-lane machine when sliced exploration
// is on for this call's options, supported by the bound design, and g is
// past the scalar-first warm-up; nil means use the scalar simulator.
func (e *Engine) slicedGraphMachine(g *Graph) *verilog.SlicedMachine {
	if e.opt.Slices == SlicesOff || e.backend != BackendCompiled {
		return nil
	}
	if g.Expanded*g.EdgesPerNode < slicedWarmupEdges {
		return nil
	}
	return e.ensureSliced()
}

// slicedHuntMachine is the hunt-side gate: hunts fill whole 64-run
// blocks of full-depth stimulus, so they amortize the machine
// immediately and skip the graph warm-up.
func (e *Engine) slicedHuntMachine() *verilog.SlicedMachine {
	if e.opt.Slices == SlicesOff || e.backend != BackendCompiled {
		return nil
	}
	return e.ensureSliced()
}

// expandNodeSliced simulates a node's input vectors in 64-wide chunks:
// the source state broadcasts to every lane, each lane drives one vector,
// and one settle+step pass yields 64 edges. Rows, vectors and discovered
// states land in exactly the per-vector order the scalar loop produces.
func (e *Engine) expandNodeSliced(g *Graph, msl *verilog.SlicedMachine, cur []uint64, vecs [][]uint64, rows []uint64) {
	const lanes = verilog.SlicedLanes
	var laneBuf [lanes]uint64
	words := g.PackWords
	if cap(e.lanePacked) < lanes*words {
		e.lanePacked = make([]uint64, lanes*words)
	}
	lanePacked := e.lanePacked[:lanes*words]
	for v0 := 0; v0 < len(vecs); v0 += lanes {
		n := len(vecs) - v0
		if n > lanes {
			n = lanes
		}
		msl.LoadRegsBroadcast(cur)
		if g.Enumerate {
			// Exhaustive vectors are position-determined, so the driven
			// input planes repeat node to node: re-apply the cached
			// pattern as a plane copy instead of re-transposing lanes.
			msl.RestoreNets(e.nl.Inputs, e.enumPlanePattern(msl, v0/lanes))
		} else {
			for pos := 0; pos < len(e.nl.Inputs); pos++ {
				for l := 0; l < n; l++ {
					laneBuf[l] = vecs[v0+l][pos]
				}
				msl.SetInputLanes(pos, laneBuf[:n])
			}
		}
		msl.Settle()
		// Rows land in the caller's local-edge-major scratch, one
		// support column (live lanes only) at a time; dedupEdges keeps
		// only the representatives' rows.
		nSup := len(g.Support)
		for j := range g.Support {
			msl.Lanes(e.supportSrc[j], laneBuf[:n])
			for l := 0; l < n; l++ {
				rows[(v0+l)*nSup+j] = laneBuf[l]
			}
		}
		if !g.Enumerate {
			for l := 0; l < n; l++ {
				g.Vecs = pushU64s(g.Vecs, vecs[v0+l])
			}
		}
		msl.Step()
		// One transposing gather hands back every lane's registers
		// already in packed layout (PackedLanes matches packRegs'
		// little-endian concatenation).
		msl.PackedLanes(e.nl.Regs, n, words, lanePacked)
		for l := 0; l < n; l++ {
			packed := lanePacked[l*words : (l+1)*words]
			k, h := e.packedKeyHash(packed)
			ord, existed := e.gVisited.insert(h, k)
			if !existed {
				g.Packed = pushU64s(g.Packed, packed)
				g.EdgeOff = pushI32(g.EdgeOff, -1)
				g.DedupOff = pushI32(g.DedupOff, -1)
				g.DedupN = pushI32(g.DedupN, 0)
				g.Nodes++
			}
			g.Dst = pushI32(g.Dst, int32(ord))
		}
	}
}

// expandNodesSliced expands several nodes in shared 64-lane passes:
// the flat (node, vector) work list is chunked by 64 and every lane
// carries its own source registers (SetNetLanes), so bounded-sample
// nodes — whose 14-odd vectors leave a single-node pass mostly idle —
// fill the machine. Edges land node-major at pre-assigned offsets and
// new states are interned in flat work-list order, which is exactly the
// order the one-at-a-time flow discovers them in (callers pass nodes in
// first-demand order), so the resulting graph is byte-identical.
func (e *Engine) expandNodesSliced(g *Graph, msl *verilog.SlicedMachine, us []int32) {
	if e.gVisitedFor != g {
		e.syncGraphVisited(g)
	}
	const lanes = verilog.SlicedLanes
	edges := g.EdgesPerNode
	nIn := len(e.nl.Inputs)
	words := g.PackWords
	total := len(us) * edges
	if cap(e.expandVecBuf) < total*nIn {
		e.expandVecBuf = make([]uint64, total*nIn)
	}
	vecBuf := e.expandVecBuf[:total*nIn]
	// Materialize every node's vectors up front (the sample buffer is
	// engine-shared) and claim edge offsets node-major before any
	// simulation.
	base := len(g.Dst)
	for ui, u := range us {
		// Enumerate chunks are driven from the cached plane pattern, so
		// only sampled vectors need materializing here.
		if !g.Enumerate {
			vecs := e.sampleInputVectors(sampleSeed(e.opt.Seed, g.node(u)))
			for vi, in := range vecs {
				copy(vecBuf[(ui*edges+vi)*nIn:], in)
			}
		}
		g.EdgeOff[u] = int32(base + ui*edges)
	}
	nSup := len(g.Support)
	rowBuf := e.rowScratch(total * nSup)
	// Every extended slot is written below before it is read, so the
	// extension skips the zeroed temporary an append(..., make(...))
	// would allocate per expansion.
	g.Dst = extendI32(g.Dst, total)
	if !g.Enumerate {
		vb := len(g.Vecs)
		g.Vecs = extendU64(g.Vecs, total*nIn)
		copy(g.Vecs[vb:], vecBuf)
	}
	if cap(e.lanePacked) < lanes*words {
		e.lanePacked = make([]uint64, lanes*words)
	}
	lanePacked := e.lanePacked[:lanes*words]
	var laneBuf [lanes]uint64
	for c0 := 0; c0 < total; c0 += lanes {
		n := total - c0
		if n > lanes {
			n = lanes
		}
		// Each lane's source registers load straight from the packed
		// node bytes; one transposing scatter replaces a per-register
		// SetNetLanes sweep. (lanePacked is free until the PackedLanes
		// gather below.)
		for l := 0; l < n; l++ {
			copy(lanePacked[l*words:(l+1)*words], g.node(us[(c0+l)/edges]))
		}
		msl.SetPackedLanes(e.nl.Regs, n, words, lanePacked)
		if g.Enumerate {
			// Multi-node enumerate chunks start at node boundaries, and
			// 64 is a multiple of the (power-of-two) edge count, so every
			// chunk sees the same periodic vector pattern: one cached
			// plane set serves them all.
			msl.RestoreNets(e.nl.Inputs, e.enumPlanePattern(msl, 0))
		} else {
			for pos := 0; pos < nIn; pos++ {
				for l := 0; l < n; l++ {
					laneBuf[l] = vecBuf[(c0+l)*nIn+pos]
				}
				msl.SetInputLanes(pos, laneBuf[:n])
			}
		}
		msl.Settle()
		for j := range g.Support {
			msl.Lanes(e.supportSrc[j], laneBuf[:n])
			for l := 0; l < n; l++ {
				rowBuf[(c0+l)*nSup+j] = laneBuf[l]
			}
		}
		msl.Step()
		msl.PackedLanes(e.nl.Regs, n, words, lanePacked)
		for l := 0; l < n; l++ {
			packed := lanePacked[l*words : (l+1)*words]
			k, h := e.packedKeyHash(packed)
			ord, existed := e.gVisited.insert(h, k)
			if !existed {
				g.Packed = pushU64s(g.Packed, packed)
				g.EdgeOff = pushI32(g.EdgeOff, -1)
				g.DedupOff = pushI32(g.DedupOff, -1)
				g.DedupN = pushI32(g.DedupN, 0)
				g.Nodes++
			}
			g.Dst[base+c0+l] = int32(ord)
		}
	}
	for ui, u := range us {
		g.dedupEdges(u, rowBuf[ui*edges*nSup:(ui+1)*edges*nSup])
	}
	g.Expanded += len(us)
}

// enumPlanePattern returns the cached input bit-planes for enumerate
// chunk pattern pi: lane l carries vector (pi*64+l) mod edges. The
// periodic fill covers all 64 lanes, so one cached pattern serves full
// and partial chunks alike (extra lanes are simulated and ignored).
// Patterns are built lazily — the machine is driven once through
// SetInputLanes and its input planes snapshotted — and every later
// enumerate chunk of any node re-applies them as a flat plane copy,
// which is what makes exhaustive expansion input marshalling O(input
// bits) words instead of a per-lane re-transpose.
func (e *Engine) enumPlanePattern(msl *verilog.SlicedMachine, pi int) []uint64 {
	const lanes = verilog.SlicedLanes
	if len(e.nl.Inputs) == 0 {
		return nil
	}
	vecs := e.enumInputVectors()
	edges := len(vecs)
	if e.enumPlaneW == 0 {
		for _, idx := range e.nl.Inputs {
			e.enumPlaneW += e.nl.Nets[idx].Width
		}
	}
	w := e.enumPlaneW
	for built := len(e.enumPlanes) / w; built <= pi; built++ {
		var laneBuf [lanes]uint64
		for pos := range e.nl.Inputs {
			for l := 0; l < lanes; l++ {
				laneBuf[l] = vecs[(built*lanes+l)%edges][pos]
			}
			msl.SetInputLanes(pos, laneBuf[:])
		}
		e.enumPlanes = extendU64(e.enumPlanes, w)
		msl.SnapshotNets(e.nl.Inputs, e.enumPlanes[built*w:])
	}
	return e.enumPlanes[pi*w : (pi+1)*w]
}

// rowScratch returns an n-word engine-owned buffer for freshly simulated
// support rows; contents are only valid until the next expansion.
func (e *Engine) rowScratch(n int) []uint64 {
	if cap(e.expandRowBuf) < n {
		e.expandRowBuf = make([]uint64, n)
	}
	return e.expandRowBuf[:n]
}

// extendU64 grows s by n entries without zero-filling a temporary; the
// reused-capacity fast path exposes stale words, so callers must write
// every extended slot before reading it.
func extendU64(s []uint64, n int) []uint64 {
	if cap(s)-len(s) >= n {
		return s[:len(s)+n]
	}
	t := make([]uint64, len(s)+n, (len(s)+n)*2)
	copy(t, s)
	return t
}

// extendI32 is extendU64 for int32 slices.
func extendI32(s []int32, n int) []int32 {
	if cap(s)-len(s) >= n {
		return s[:len(s)+n]
	}
	t := make([]int32, len(s)+n, (len(s)+n)*2)
	copy(t, s)
	return t
}

// unpackRegs reverses packRegs into dst (one value per register).
func (e *Engine) unpackRegs(packed []uint64, dst []uint64) {
	pos := 0
	for i, w := range e.regWidths {
		word, off := pos>>6, uint(pos&63)
		v := packed[word] >> off
		if off+uint(w) > 64 {
			v |= packed[word+1] << (64 - off)
		}
		dst[i] = v & verilog.WidthMask(w)
		pos += w
	}
}

// HuntTrace is the shared bounded-mode random hunt: runs of RandomDepth
// cycles simulated on demand (RunsDone of Runs so far), recording each
// cycle's stimulus and the sampled values of the support union, so every
// unresolved property of a batch replays the exact trace the
// per-property hunt would drive. Published traces are immutable;
// extension happens on private clones.
type HuntTrace struct {
	Runs, Depth int
	RunsDone    int
	// Seed is the stimulus stream's seed: hunt traces always depend on
	// it even when their graph does not (enumerate-mode keys zero the
	// seed), so lookups must validate it.
	Seed      int64
	Support   []int
	NumInputs int
	// Inputs and Rows are (run*Depth+t)-major, len RunsDone*Depth*width.
	Inputs []uint64
	Rows   []uint64
}

func (h *HuntTrace) input(run, t int) []uint64 {
	e := run*h.Depth + t
	return h.Inputs[e*h.NumInputs : (e+1)*h.NumInputs]
}

func (h *HuntTrace) row(run, t int) []uint64 {
	e := run*h.Depth + t
	n := len(h.Support)
	return h.Rows[e*n : (e+1)*n]
}

// Bytes estimates the trace's retained memory for the cache bound.
func (h *HuntTrace) Bytes() int64 {
	return int64(8*(len(h.Inputs)+len(h.Rows)+len(h.Support)) + 64)
}

func (h *HuntTrace) clone() *HuntTrace {
	c := *h
	c.Inputs = append([]uint64(nil), h.Inputs...)
	c.Rows = append([]uint64(nil), h.Rows...)
	return &c
}

// huntWarmupRuns is the scalar-first hunt warm-up: counterexample-heavy
// workloads usually die within the first few runs, and the sliced path
// rounds every demand up to a whole 64-run block, so the first runs are
// simulated exactly as demanded and lane blocks only engage once demand
// shows the hunt is going deep. Trace content is identical either way.
const huntWarmupRuns = 8

// extendHunt simulates runs [ht.RunsDone, upto] into the trace — the
// same per-run splitmix stimulus streams the per-property hunt draws.
// The caller owns ht. Trace content is identical whichever execution
// path extends it (scalar or 64-lane sliced); the sliced path merely
// rounds the demand up to its block size.
func (e *Engine) extendHunt(ht *HuntTrace, upto int) {
	if msl := e.slicedHuntMachine(); msl != nil && upto >= huntWarmupRuns {
		end := ht.RunsDone + ((upto-ht.RunsDone)/verilog.SlicedLanes+1)*verilog.SlicedLanes - 1
		if end > ht.Runs-1 {
			end = ht.Runs - 1
		}
		e.extendHuntSliced(ht, end, msl)
		return
	}
	start := ht.RunsDone
	// Size the full extension up front (every slot is written below
	// before it is read) and fill positionally — per-cycle appends grew
	// the megabyte-scale trace arrays incrementally.
	ht.Inputs = extendU64(ht.Inputs, (upto+1-start)*ht.Depth*ht.NumInputs)
	ht.Rows = extendU64(ht.Rows, (upto+1-start)*ht.Depth*len(ht.Support))
	ht.RunsDone = upto + 1
	s := e.hunt
	for run := start; run <= upto; run++ {
		s.ResetState()
		sm := sm64(huntSeed(e.opt.Seed, run))
		for t := 0; t < ht.Depth; t++ {
			vals := ht.input(run, t)
			e.fillStimulus(&sm, t, vals)
			// SetInputs cannot fail (vals is sized to the netlist); keep
			// Inputs/Rows aligned by construction. Under a cone the trace
			// records the full-layout vector and drives its projection.
			_ = s.SetInputs(e.projectInputs(vals))
			s.Settle()
			env := s.Env()
			row := ht.row(run, t)
			for j := range ht.Support {
				row[j] = env[e.supportSrc[j]]
			}
			s.Step()
		}
	}
}

// extendHuntSliced is extendHunt on the 64-lane machine: lane l of a
// block starting at run r0 is scalar run r0+l, so one pass through the
// design advances 64 runs. Inputs and rows are written positionally into
// the (run, t)-major trace layout, byte-identical to the scalar loop's.
func (e *Engine) extendHuntSliced(ht *HuntTrace, upto int, msl *verilog.SlicedMachine) {
	const lanes = verilog.SlicedLanes
	start := ht.RunsDone
	if upto < start {
		return
	}
	// Size the extension without the zeroed temporary an append(make)
	// pair allocates — huntBlock writes every slot before it is read.
	ht.Inputs = extendU64(ht.Inputs, (upto+1-start)*ht.Depth*ht.NumInputs)
	ht.Rows = extendU64(ht.Rows, (upto+1-start)*ht.Depth*len(ht.Support))
	ht.RunsDone = upto + 1 // input()/row() now index the extended arrays
	for r0 := start; r0 <= upto; r0 += lanes {
		n := upto + 1 - r0
		if n > lanes {
			n = lanes
		}
		e.huntBlock(ht, msl, r0, n)
	}
}

// huntBlock simulates hunt runs [r0, r0+n) into ht's already sized
// arrays on msl — lane l is scalar run r0+l.
func (e *Engine) huntBlock(ht *HuntTrace, msl *verilog.SlicedMachine, r0, n int) {
	const lanes = verilog.SlicedLanes
	var sms [lanes]sm64
	var laneBuf [lanes]uint64
	msl.ResetState()
	for l := 0; l < n; l++ {
		sms[l] = sm64(huntSeed(e.opt.Seed, r0+l))
	}
	for t := 0; t < ht.Depth; t++ {
		for l := 0; l < n; l++ {
			e.fillStimulus(&sms[l], t, ht.input(r0+l, t))
		}
		for pos := 0; pos < len(e.nl.Inputs); pos++ {
			fullPos := pos
			if e.cone != nil {
				fullPos = e.inProj[pos]
			}
			for l := 0; l < n; l++ {
				laneBuf[l] = ht.input(r0+l, t)[fullPos]
			}
			msl.SetInputLanes(pos, laneBuf[:n])
		}
		msl.Settle()
		for j := range ht.Support {
			msl.Lanes(e.supportSrc[j], laneBuf[:n])
			for l := 0; l < n; l++ {
				ht.row(r0+l, t)[j] = laneBuf[l]
			}
		}
		msl.Step()
	}
}

// packedKeyHash encodes packed register words into the engine's reused
// key buffer with the probing hash, for the graph's exact design-state
// dedup.
func (e *Engine) packedKeyHash(packed []uint64) ([]byte, uint64) {
	buf := e.keyBuf[:0]
	h := uint64(stateHashSeed)
	for _, v := range packed {
		buf = le64Append(buf, v)
		h = stateMix(h, v)
	}
	e.keyBuf = buf
	return buf, h
}

// --- cache ---

// DefaultGraphMemory bounds a zero-value GraphCache's retained bytes.
const DefaultGraphMemory = 64 << 20

// graphKey identifies one cached exploration. The netlist pointer stands
// in for (design name, source hash): the elaboration cache interns
// netlists per source hash, so a source change yields a new pointer and
// the stale graph simply ages out of the LRU. The key deliberately
// excludes every option that does not change graph content: search
// budgets (exploration is demand-driven with copy-on-write extension,
// so a deeper budget extends the same graph), and — for enumerate-mode
// graphs, which sample nothing — the seed and sample count (those are
// zeroed by Engine.graphKey; hunt traces, which always depend on the
// seed, record it themselves and are validated on lookup).
type graphKey struct {
	nl         *verilog.Netlist
	backend    string
	enumerate  bool
	maxSamples int
	seed       int64
}

type graphEntry struct {
	key        graphKey
	g          *Graph
	hunt       *HuntTrace
	bytes      int64
	prev, next *graphEntry
}

// GraphCache holds reachability graphs (and their hunt traces) under an
// explicit memory bound with LRU eviction. The zero value is ready to
// use with the DefaultGraphMemory bound; it is safe for concurrent use.
// Entries are immutable: engines that need deeper exploration clone,
// extend privately and republish (store replaces in place). A cached
// graph whose support union lacks nets a new batch reads is discarded
// and rebuilt over the merged union, so unions only grow per key.
type GraphCache struct {
	mu       sync.Mutex
	maxBytes int64
	total    int64
	m        map[graphKey]*graphEntry
	head     *graphEntry // most recently used
	tail     *graphEntry

	// disk, when set, is the persistent tier: lookup falls through to
	// it on a memory miss, and store writes every published exploration
	// behind. See SetDisk.
	disk *astore.Store
}

// SetDisk attaches an on-disk artifact store as a read-through /
// write-behind tier under the memory cache (nil detaches it). Disk
// blobs are keyed by netlist content hash rather than pointer, so
// explorations written by one process are read back by any other
// process elaborating the same source (see graphKey.diskKey). Blob
// integrity and corruption fallback are the store's job; a loaded
// graph that fails decoding or structural validation is treated as a
// plain miss and rebuilt.
func (c *GraphCache) SetDisk(s *astore.Store) {
	c.mu.Lock()
	c.disk = s
	c.mu.Unlock()
}

// diskKey is the process-independent form of a graphKey: the netlist
// pointer (which the elaboration cache interns per source hash, but
// which dies with the process) is replaced by the netlist's content
// hash, which also absorbs cone reduction — a reduced netlist hashes
// its reduced signature. The remaining fields mirror the memory key,
// and for the same reasons exclude search budgets (demand-driven
// copy-on-write extension) and slice/static modes (byte-identical
// graphs). A codec version rides in front so layout changes invalidate
// cleanly.
func (k graphKey) diskKey() string {
	h := k.nl.ContentHash()
	return fmt.Sprintf("g%d\x00%x\x00%s\x00%t\x00%d\x00%d",
		graphioVersion, h, k.backend, k.enumerate, k.maxSamples, k.seed)
}

// SetMaxBytes sets the memory bound (0 restores DefaultGraphMemory) and
// evicts immediately if the cache is over it.
func (c *GraphCache) SetMaxBytes(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxBytes = n
	c.evictOver()
}

func (c *GraphCache) limit() int64 {
	if c.maxBytes <= 0 {
		return DefaultGraphMemory
	}
	return c.maxBytes
}

// Len reports how many explorations the cache holds.
func (c *GraphCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Bytes reports the cache's current retained estimate.
func (c *GraphCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Purge empties the cache.
func (c *GraphCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = nil
	c.head, c.tail = nil, nil
	c.total = 0
}

// lookup returns the cached graph and hunt trace for key if the graph's
// support union covers union; on a union miss it returns the stale
// support set so the caller can rebuild over the merge. A memory miss
// falls through to the disk tier when one is attached: a verified,
// decodable blob is adopted into the memory cache (so publish and
// copy-on-write extension flows see an ordinary hit) and served.
func (c *GraphCache) lookup(key graphKey, union []int) (*Graph, *HuntTrace, []int) {
	c.mu.Lock()
	if e := c.m[key]; e != nil {
		defer c.mu.Unlock()
		if !subsetOf(union, e.g.Support) {
			return nil, nil, e.g.Support
		}
		c.touch(e)
		return e.g, e.hunt, nil
	}
	disk := c.disk
	c.mu.Unlock()
	if disk == nil {
		return nil, nil, nil
	}
	blob, ok := disk.Get(astore.KindGraph, key.diskKey())
	if !ok {
		return nil, nil, nil
	}
	g, ht, err := DecodeGraph(blob)
	if err != nil {
		// Version skew or a foreign payload behind a valid checksum:
		// a plain miss; the rebuild's write-behind replaces the blob.
		return nil, nil, nil
	}
	if !subsetOf(union, g.Support) {
		return nil, nil, g.Support
	}
	c.insert(key, g, ht)
	return g, ht, nil
}

// store publishes key's exploration to the memory cache and, when a
// disk tier is attached, writes the blob behind (outside the lock; a
// failed write just means the next process rebuilds). ht may be nil
// (no hunt ran yet); a hunt whose budget mismatches the verifying
// options is the caller's to discard.
func (c *GraphCache) store(key graphKey, g *Graph, ht *HuntTrace) {
	c.insert(key, g, ht)
	c.mu.Lock()
	disk := c.disk
	c.mu.Unlock()
	if disk != nil {
		_ = disk.Put(astore.KindGraph, key.diskKey(), EncodeGraph(g, ht))
	}
}

// insert places (or replaces) key's exploration in the memory tier and
// evicts LRU entries beyond the memory bound.
func (c *GraphCache) insert(key graphKey, g *Graph, ht *HuntTrace) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old := c.m[key]; old != nil {
		c.remove(old)
	}
	if c.m == nil {
		c.m = make(map[graphKey]*graphEntry)
	}
	e := &graphEntry{key: key, g: g, hunt: ht, bytes: g.Bytes()}
	if ht != nil {
		e.bytes += ht.Bytes()
	}
	c.m[key] = e
	c.attach(e)
	c.total += e.bytes
	c.evictOver()
}

func (c *GraphCache) touch(e *graphEntry) {
	if c.head == e {
		return
	}
	c.detach(e)
	c.attach(e)
}

func (c *GraphCache) attach(e *graphEntry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *GraphCache) detach(e *graphEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *GraphCache) remove(e *graphEntry) {
	c.detach(e)
	delete(c.m, e.key)
	c.total -= e.bytes
}

func (c *GraphCache) evictOver() {
	for c.total > c.limit() && c.tail != nil {
		c.remove(c.tail)
	}
}

// subsetOf reports whether every element of a (sorted) appears in b
// (sorted).
func subsetOf(a, b []int) bool {
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j == len(b) || b[j] != x {
			return false
		}
		j++
	}
	return true
}

// mergeSorted unions two sorted int slices.
func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j == len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i == len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
