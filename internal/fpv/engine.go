package fpv

import (
	"context"
	"encoding/binary"
	"fmt"

	"assertionbench/internal/sim"
	"assertionbench/internal/sva"
	"assertionbench/internal/verilog"
)

// Engine is a reusable FPV engine. One Engine owns the allocation-heavy
// state of a verification run — the simulator pair, the visited-state set,
// the BFS node arena, and the RNG — and resets it between calls instead of
// reallocating, so verifying thousands of assertions (the evaluation
// runner's workload) stays cheap. Verdicts are identical to a fresh
// engine's at the same Options.Seed.
//
// An Engine is NOT safe for concurrent use; pool one per worker.
type Engine struct {
	// Graphs, when non-nil, caches shared reachability graphs (and hunt
	// traces) for the batched verification path across calls and engines;
	// nil engines still batch, but rebuild the graph per VerifyBatch call.
	Graphs *GraphCache

	// Per-netlist state, rebuilt only when the design under verification
	// (or the execution backend) changes (Bind).
	nl         *verilog.Netlist
	backend    string
	sim        *sim.Simulator // BFS state loader
	hunt       *sim.Simulator // random-walk / CEX-replay simulator
	zeroEnv    []uint64
	regWidths  []int    // per-register widths (state packing plan)
	packBuf    []uint64 // bit-packed register scratch (StateBits() bits)
	lanePacked []uint64 // per-lane packed-register scratch for sliced expansion
	resetLike  []bool   // per data input: name looks reset-ish (hunt bias)

	// Cone-of-influence state. With a cone active the simulators, the
	// register packing and the input sampling all run over cone.Reduced
	// (e.nl), while everything the caller observes — monitor history
	// rows, hunt stimulus, counter-examples — stays in full-design
	// terms: support values scatter into full-width rows, hunt vectors
	// are drawn over the full input layout and projected onto the cone,
	// and CEXs replay on a full-design simulator.
	cone       *verilog.Cone    // nil when exploring the full design
	fullNl     *verilog.Netlist // the design as the caller passed it (== nl without a cone)
	monNets    int              // monitor-facing env row width: len(fullNl.Nets)
	fullReset  []bool           // per full data input: reset-like (hunt bias)
	inProj     []int            // reduced input position -> full input position
	coneDrive  []uint64         // projected (reduced-layout) stimulus scratch
	coneRowBuf []uint64         // full-width scatter row for cone-mode BFS
	replay     *sim.Simulator   // lazy full-design CEX replay sim (cone mode)

	// Sliced (64-lane) execution state.
	slicedSim *verilog.SlicedMachine // cached per bound netlist (nil if unsupported)
	slicedFor *verilog.Netlist
	slMons    []*sva.Monitor // per-lane monitors for the sliced hunt
	slMonsFor *sva.Compiled

	// Per-call state.
	c          *sva.Compiled
	mon        *sva.Monitor
	opt        Options
	support    []int // c.SupportNets() when PastDepth > 0 (state-key rows)
	monSupport []int // c.SupportNets() (full indices), always set per call
	coneSrc    []int // monSupport mapped to reduced indices (cone mode)

	// Reused scratch.
	nodes        []node
	visitedExact exactSet // exhaustive mode: exact state keys
	visitedHash  u64Set   // bounded mode: hash compaction
	keyBuf       []byte
	histBuf      [][]uint64
	gVisited     exactSet   // graph expansion: exact design-state dedup
	gVisitedFor  *Graph     // the graph gVisited currently indexes
	supportSrc   []int      // active graph's Support mapped to bound-netlist indices
	expandRegs   []uint64   // unpacked register scratch for node expansion
	expandUs     []int32    // frontier-batch scratch: nodes expanded per sliced pass
	expandVecBuf []uint64   // frontier-batch scratch: flat per-edge input vectors
	expandRowBuf []uint64   // expansion scratch: all-edge support rows pre-dedup
	gnodes       []gnode    // batched product-BFS node list
	scatterRows  [][]uint64 // batched search: union rows scattered to full env width
	unionPos     []int32    // net index -> position in the active graph's Support
	regBuf       []uint64   // post-step register snapshot
	envScratch   []uint64   // pre-step env snapshot for $past history
	widths       []int      // data-input widths (per netlist)
	histScratch  [][]uint64 // assembled child history
	enumVecs     [][]uint64 // cached exhaustive input enumeration (per netlist)
	enumPlanes   []uint64   // cached enumerate input bit-planes, pattern-major (per netlist)
	enumPlaneW   int        // words per cached pattern (sum of input widths)
	sampleVecs   [][]uint64 // reusable sampled input vectors
	arena        [][]uint64 // bump-arena chunks for retained per-node data
	arenaCur     int
	huntRing     [][]uint64 // randomHunt history ring buffers
	huntInputs   [][]uint64 // randomHunt stimulus list (outer slice reused)
}

// arenaReset rewinds the arena without releasing its chunks: the previous
// call's nodes are dead, and anything that escaped into a Result was
// deep-copied out, so the chunks (engine high-water mark) are reusable.
func (e *Engine) arenaReset() {
	for i := range e.arena {
		e.arena[i] = e.arena[i][:0]
	}
	e.arenaCur = 0
}

// allocU64 bump-allocates n words from the engine's arena. Node data
// (register snapshots, retained input vectors, history heads) lives only
// until the next call resets the arena, so everything that escapes into a
// Result must be deep-copied (replayCEX does).
func (e *Engine) allocU64(n int) []uint64 {
	for {
		if e.arenaCur == len(e.arena) {
			size := 1 << 14
			if n > size {
				size = n
			}
			e.arena = append(e.arena, make([]uint64, 0, size))
		}
		c := e.arena[e.arenaCur]
		if len(c)+n <= cap(c) {
			s := c[len(c) : len(c)+n : len(c)+n]
			e.arena[e.arenaCur] = c[:len(c)+n]
			return s
		}
		e.arenaCur++
	}
}

func (e *Engine) copyU64(src []uint64) []uint64 {
	s := e.allocU64(len(src))
	copy(s, src)
	return s
}

// NewEngine returns an empty reusable engine.
func NewEngine() *Engine {
	return &Engine{}
}

// The engine's randomness is pure: every sampled input vector and hunt
// stimulus is a splitmix64 function of (Options.Seed, design state or run
// index), never a draw from a shared stream. That is what makes verdicts
// reproducible per seed with zero per-call reseeding cost, and — more
// importantly — what lets the batched verifier share one reachability
// graph across a batch: the vectors tried from a design state depend on
// the state alone, so per-property search and graph replay explore
// byte-identical product spaces (dverify oracle 5).

// sm64 is a splitmix64 stream.
type sm64 uint64

func (s *sm64) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// mix64 finalizes a 64-bit hash (the same mixer the state hashes use).
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// sampleSeed derives the per-state sampling stream from the run seed and
// the bit-packed register state.
func sampleSeed(seed int64, packed []uint64) uint64 {
	h := uint64(seed) ^ 0x9E3779B97F4A7C15
	for _, v := range packed {
		h = mix64(h ^ v)
	}
	return h
}

// huntSeed derives the stimulus stream of one random-hunt run. It depends
// only on (seed, run), so hunt traces are identical for every property —
// the batched verifier simulates each run once and replays it for the
// whole batch.
func huntSeed(seed int64, run int) uint64 {
	return mix64(uint64(seed)*0x9E3779B97F4A7C15 + uint64(run) + 1)
}

// exactSet is a reused open-addressed set of exact state keys for
// exhaustive mode: keys live in one flat arena (fixed length per call,
// since a state key's layout is constant per (design, property)), slots
// hold the key's arena index, and probing uses the 64-bit state hash the
// engine computes anyway — collisions fall back to byte comparison, so
// membership stays exact and proofs stay sound.
type exactSet struct {
	slots  []int32 // key ordinal+1; 0 = empty
	hashes []uint64
	arena  []byte
	keyLen int
	n      int
}

func (s *exactSet) reset(keyLen int) {
	if s.slots == nil {
		s.slots = make([]int32, 1<<10)
		s.hashes = make([]uint64, 0, 1<<10)
	}
	clear(s.slots)
	s.hashes = s.hashes[:0]
	s.arena = s.arena[:0]
	s.keyLen = keyLen
	s.n = 0
}

// insert adds the (hash, key) pair, returning the key's ordinal (its
// insertion index — the graph builder uses it as the node id) and whether
// it was already present.
func (s *exactSet) insert(h uint64, key []byte) (int, bool) {
	mask := uint64(len(s.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		ord := s.slots[i]
		if ord == 0 {
			s.slots[i] = int32(s.n + 1)
			s.hashes = append(s.hashes, h)
			s.arena = append(s.arena, key...)
			s.n++
			if s.n*4 > len(s.slots)*3 {
				s.grow()
			}
			return s.n - 1, false
		}
		k := int(ord - 1)
		if s.hashes[k] == h && string(s.arena[k*s.keyLen:(k+1)*s.keyLen]) == string(key) {
			return k, true
		}
	}
}

func (s *exactSet) grow() {
	s.slots = make([]int32, len(s.slots)*2)
	mask := uint64(len(s.slots) - 1)
	for k, h := range s.hashes {
		for i := h & mask; ; i = (i + 1) & mask {
			if s.slots[i] == 0 {
				s.slots[i] = int32(k + 1)
				break
			}
		}
	}
}

// u64Set is a reused open-addressed set of non-zero 64-bit fingerprints:
// the bounded-mode visited set sits on the hottest dedup path, and linear
// probing over a flat slice beats a Go map there (no hashing of the
// already-hashed key, no bucket indirection). Zero is reserved as the
// empty slot; fingerprints are remapped off zero by the caller.
type u64Set struct {
	slots []uint64
	n     int
}

func (s *u64Set) reset() {
	if s.slots == nil {
		s.slots = make([]uint64, 1<<10)
	}
	clear(s.slots)
	s.n = 0
}

// insert adds v (non-zero) and reports whether it was already present.
func (s *u64Set) insert(v uint64) bool {
	mask := uint64(len(s.slots) - 1)
	for i := v & mask; ; i = (i + 1) & mask {
		switch s.slots[i] {
		case v:
			return true
		case 0:
			s.slots[i] = v
			s.n++
			if s.n*4 > len(s.slots)*3 {
				s.grow()
			}
			return false
		}
	}
}

func (s *u64Set) grow() {
	old := s.slots
	s.slots = make([]uint64, len(old)*2)
	mask := uint64(len(s.slots) - 1)
	for _, v := range old {
		if v == 0 {
			continue
		}
		for i := v & mask; ; i = (i + 1) & mask {
			if s.slots[i] == 0 {
				s.slots[i] = v
				break
			}
		}
	}
}

// Bind points the engine at a design on the default (compiled) backend.
// Binding the netlist it already holds is free; a new netlist rebuilds
// the simulator pair. Verify* calls bind automatically — this is exposed
// for callers that want to front-load the cost.
func (e *Engine) Bind(nl *verilog.Netlist) { e.bind(nl, BackendCompiled) }

func (e *Engine) bind(nl *verilog.Netlist, backend string) {
	if e.nl == nl && e.backend == backend {
		return
	}
	e.nl = nl
	e.backend = backend
	if backend == BackendInterp {
		e.sim = sim.New(nl)
		e.hunt = sim.New(nl)
	} else {
		e.sim = sim.NewCompiled(nl)
		e.hunt = sim.NewCompiled(nl)
	}
	e.zeroEnv = make([]uint64, len(nl.Nets))
	e.regBuf = make([]uint64, len(nl.Regs))
	e.envScratch = make([]uint64, len(nl.Nets))
	e.widths = make([]int, len(nl.Inputs))
	e.resetLike = make([]bool, len(nl.Inputs))
	for i, idx := range nl.Inputs {
		e.widths[i] = nl.Nets[idx].Width
		e.resetLike[i] = isResetLike(nl.Nets[idx].Name)
	}
	e.regWidths = make([]int, len(nl.Regs))
	for i, idx := range nl.Regs {
		e.regWidths[i] = nl.Nets[idx].Width
	}
	e.packBuf = make([]uint64, (nl.StateBits()+63)/64)
	e.enumVecs = nil
	e.enumPlanes = e.enumPlanes[:0]
	e.enumPlaneW = 0
	e.sampleVecs = nil
	e.huntRing = nil
	e.scatterRows = nil
	e.unionPos = nil
	e.gVisitedFor = nil
	// Plain binds explore the full design; bindCone overrides these.
	e.cone = nil
	e.fullNl = nl
	e.monNets = len(nl.Nets)
	e.fullReset = e.resetLike
	e.inProj = nil
	e.coneDrive = nil
	e.coneRowBuf = nil
	e.replay = nil
}

// bindCone points the engine at full's cone: the simulators and state
// packing run over cone.Reduced while every monitor-facing buffer stays
// full-design width. A nil or identity cone degenerates to bind(full).
func (e *Engine) bindCone(full *verilog.Netlist, cone *verilog.Cone, backend string) {
	if cone == nil || cone.Identity {
		e.bind(full, backend)
		return
	}
	if e.nl == cone.Reduced && e.backend == backend && e.cone == cone {
		return
	}
	e.bind(cone.Reduced, backend)
	e.cone = cone
	e.fullNl = full
	e.monNets = len(full.Nets)
	// Monitors read full-design net indices: resize every row they see.
	e.zeroEnv = make([]uint64, e.monNets)
	e.envScratch = make([]uint64, e.monNets)
	e.coneRowBuf = make([]uint64, e.monNets)
	e.fullReset = make([]bool, len(full.Inputs))
	for i, idx := range full.Inputs {
		e.fullReset[i] = isResetLike(full.Nets[idx].Name)
	}
	// Reduced inputs are a subsequence of the full inputs (projection
	// preserves order), so the position map is a linear merge.
	e.inProj = make([]int, len(cone.Reduced.Inputs))
	fp := 0
	for ri, rIdx := range cone.Reduced.Inputs {
		fIdx := cone.Inv[rIdx]
		for full.Inputs[fp] != fIdx {
			fp++
		}
		e.inProj[ri] = fp
	}
	e.coneDrive = make([]uint64, len(cone.Reduced.Inputs))
}

// projectInputs gathers a full-layout stimulus vector onto the cone's
// input layout (reused scratch).
func (e *Engine) projectInputs(full []uint64) []uint64 {
	if e.cone == nil {
		return full
	}
	for i, p := range e.inProj {
		e.coneDrive[i] = full[p]
	}
	return e.coneDrive
}

// expandInputVec lifts a reduced-layout input vector to the full layout
// (cut inputs read zero — they are unobservable by construction).
func (e *Engine) expandInputVec(v []uint64) []uint64 {
	full := make([]uint64, len(e.fullNl.Inputs))
	for i, p := range e.inProj {
		full[p] = v[i]
	}
	return full
}

// sliceRow maps a reduced env onto a full-width row at the property's
// support positions (all a monitor ever reads). Without a cone the env
// is returned as-is.
func (e *Engine) sliceRow(env []uint64) []uint64 {
	if e.cone == nil {
		return env
	}
	row := e.coneRowBuf
	for j, idx := range e.monSupport {
		row[idx] = env[e.coneSrc[j]]
	}
	return row
}

// replaySim returns the simulator CEX replay runs on: the hunt sim when
// exploring the full design, a lazily built full-design sim under a cone
// (counter-examples are always reported in full-design terms).
func (e *Engine) replaySim() *sim.Simulator {
	if e.cone == nil {
		return e.hunt
	}
	if e.replay == nil {
		if e.backend == BackendInterp {
			e.replay = sim.New(e.fullNl)
		} else {
			e.replay = sim.NewCompiled(e.fullNl)
		}
	}
	return e.replay
}

// le64Append appends v little-endian to buf.
func le64Append(buf []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return append(buf, tmp[:]...)
}

// stateHashSeed and stateMix are THE visited-state hash: every state
// key/fingerprint — per-property (stateKeyHash/stateHash) and batched
// (graphKeyHash/graphHash) — folds its words through this one
// definition, in the same field order, so the two search paths produce
// byte-identical keys for identical product states by construction.
// Oracle 5's verdict-identity guarantee (and exhaustive-mode proof
// soundness under shared graphs) rests on that identity; change the
// encodings only in lockstep.
const stateHashSeed = 0x9E3779B97F4A7C15

func stateMix(h, v uint64) uint64 {
	h ^= v
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// Verify model-checks an already-parsed assertion against the netlist.
func (e *Engine) Verify(ctx context.Context, nl *verilog.Netlist, a *sva.Assertion, opt Options) Result {
	c, err := sva.Compile(a, nl)
	if err != nil {
		return Result{Status: StatusError, Err: err}
	}
	return e.VerifyCompiled(ctx, nl, c, opt)
}

// VerifySource parses and verifies an assertion given as text.
func (e *Engine) VerifySource(ctx context.Context, nl *verilog.Netlist, src string, opt Options) Result {
	a, err := sva.Parse(src)
	if err != nil {
		return Result{Status: StatusError, Err: err}
	}
	return e.Verify(ctx, nl, a, opt)
}

// VerifyAll verifies a batch of assertion texts, one result per input.
// Parsing and compilation are hoisted out of the search loop, and with
// batching on (Options.Batch, the default) the compiled assertions run
// through VerifyBatch's shared reachability graph with duplicate texts
// verified once (the engine is deterministic per (netlist, text, opt),
// so duplicates share a result — exactly what per-property verification
// would compute for each). Options.Batch == BatchOff keeps the
// per-property reference search, with the netlist bound once for the
// whole batch either way. A context cancellation mid-batch marks the
// remaining results canceled.
func (e *Engine) VerifyAll(ctx context.Context, nl *verilog.Netlist, srcs []string, opt Options) []Result {
	opt = opt.withDefaults()
	out := make([]Result, len(srcs))
	cs := make([]*sva.Compiled, 0, len(srcs))
	idx := make([]int, 0, len(srcs))
	batch := opt.Batch != BatchOff
	first := make(map[string]int, len(srcs)) // text -> slot in cs (batch dedup)
	dup := make(map[int]int)                 // out index -> slot in cs
	for i, s := range srcs {
		if batch {
			if k, ok := first[s]; ok {
				dup[i] = k
				continue
			}
		}
		a, err := sva.Parse(s)
		if err != nil {
			out[i] = Result{Status: StatusError, Err: err}
			continue
		}
		c, err := sva.Compile(a, nl)
		if err != nil {
			out[i] = Result{Status: StatusError, Err: err}
			continue
		}
		if batch {
			first[s] = len(cs)
		}
		cs = append(cs, c)
		idx = append(idx, i)
	}
	if batch {
		results := e.VerifyBatch(ctx, nl, cs, opt)
		for k, r := range results {
			out[idx[k]] = r
		}
		// Each duplicate writes its own slot.
		//ab:allow maprange
		for i, k := range dup {
			out[i] = results[k]
		}
		return out
	}
	for k, c := range cs {
		out[idx[k]] = e.VerifyCompiled(ctx, nl, c, opt)
	}
	return out
}

// VerifyCompiled model-checks one compiled assertion against the netlist.
//
// The search loops poll ctx: on cancellation the call stops early and
// returns StatusError with Err set to ctx.Err() (never a partial pass or
// proof), and when a ctx deadline expires mid-search the call returns
// StatusUnknown — the budgeted anytime early-out (see ctxResult). Callers
// that need to distinguish interruption from an invalid assertion should
// check ctx.Err() alongside the result.
func (e *Engine) VerifyCompiled(ctx context.Context, nl *verilog.Netlist, c *sva.Compiled, opt Options) Result {
	if err := ctx.Err(); err != nil {
		return ctxResult(err)
	}
	opt = opt.withDefaults()
	if opt.Backend != BackendCompiled && opt.Backend != BackendInterp {
		return Result{Status: StatusError, Err: fmt.Errorf("fpv: unknown backend %q", opt.Backend)}
	}
	if opt.Cone != ConeAuto && opt.Cone != ConeOff {
		return Result{Status: StatusError, Err: fmt.Errorf("fpv: unknown cone mode %q", opt.Cone)}
	}
	if opt.Slices != SlicesAuto && opt.Slices != SlicesOff {
		return Result{Status: StatusError, Err: fmt.Errorf("fpv: unknown slices mode %q", opt.Slices)}
	}
	if opt.Static != StaticAuto && opt.Static != StaticOff {
		return Result{Status: StatusError, Err: fmt.Errorf("fpv: unknown static mode %q", opt.Static)}
	}
	if opt.Static != StaticOff {
		if res, ok := staticResult(nl, c); ok {
			return res
		}
	}
	cone := coneFor(nl, c, opt)
	e.bindCone(nl, cone, opt.Backend)
	e.c = c
	if opt.Backend == BackendCompiled {
		mon, err := sva.NewMonitorCompiled(c)
		if err != nil {
			return Result{Status: StatusError, Err: err}
		}
		e.mon = mon
	} else {
		e.mon = sva.NewMonitor(c)
	}
	e.opt = opt
	e.support = nil
	if c.PastDepth > 0 {
		e.support = c.SupportNets()
	}
	e.monSupport = c.SupportNets()
	e.coneSrc = e.coneSrc[:0]
	if e.cone != nil {
		for _, idx := range e.monSupport {
			e.coneSrc = append(e.coneSrc, e.cone.Map[idx])
		}
	}

	exhaustive := e.nl.InputBits() <= opt.MaxInputBits
	res := e.bfs(ctx, exhaustive)
	if res.Status == StatusCEX || res.Status == StatusError || res.Status == StatusUnknown {
		return res
	}
	if res.Exhaustive {
		if res.NonVacuous {
			res.Status = StatusProven
		} else {
			res.Status = StatusVacuous
		}
		return res
	}
	// Bounded: hunt violations along randomized deep runs before settling
	// for a bounded pass.
	if r, sliced := e.slicedHunt(ctx, &res); sliced {
		if r != nil {
			return *r
		}
	} else if r := e.randomHunt(ctx, &res); r != nil {
		return *r
	}
	if err := ctx.Err(); err != nil {
		return ctxResult(err)
	}
	res.Status = StatusBoundedPass
	return res
}

// VerifyCompiled model-checks one compiled assertion with a one-shot engine.
func VerifyCompiled(ctx context.Context, nl *verilog.Netlist, c *sva.Compiled, opt Options) Result {
	return NewEngine().VerifyCompiled(ctx, nl, c, opt)
}

type node struct {
	regs   []uint64
	hist   [][]uint64 // most recent first; len <= PastDepth
	alive  uint64
	sat    uint64
	parent int32
	inVec  []uint64 // input vector that led here (nil for root)
	depth  int32
}

// bfs explores the product of design states and monitor states.
func (e *Engine) bfs(ctx context.Context, enumerate bool) Result {
	res := Result{}
	// Dedup: exhaustive mode (the only mode that can claim Proven/Vacuous)
	// uses exact state keys, so proofs are sound; bounded mode — already
	// approximate by construction — uses 64-bit hash compaction to keep
	// the visited set allocation-free.
	e.visitedExact.reset(e.stateKeyLen())
	e.visitedHash.reset()
	nVisited := 0
	seen := func(regs []uint64, alive, sat uint64, hist [][]uint64) bool {
		if enumerate {
			k, h := e.stateKeyHash(regs, alive, sat, hist)
			if _, existed := e.visitedExact.insert(h, k); existed {
				return true
			}
		} else {
			h := e.stateHash(regs, alive, sat, hist)
			if h == 0 {
				h = 1 // 0 is the set's empty-slot sentinel
			}
			if e.visitedHash.insert(h) {
				return true
			}
		}
		nVisited++
		return false
	}
	e.arenaReset()
	root := node{regs: e.allocU64(len(e.nl.Regs)), parent: -1}
	clear(root.regs) // arena memory is reused; power-on state is all zeros
	e.nodes = e.nodes[:0]
	e.nodes = append(e.nodes, root)
	seen(root.regs, root.alive, root.sat, root.hist)
	closed := true

	if cap(e.histBuf) < e.c.PastDepth+1 {
		e.histBuf = make([][]uint64, e.c.PastDepth+1)
	}
	histBuf := e.histBuf[:e.c.PastDepth+1]

	for head := 0; head < len(e.nodes); head++ {
		// Poll cancellation every few expansions: frequent enough that a
		// canceled search stops within microseconds, rare enough that the
		// atomic load never shows up in profiles.
		if head&63 == 0 {
			if err := ctx.Err(); err != nil {
				return ctxResult(err)
			}
		}
		if nVisited >= e.opt.MaxProductStates {
			closed = false
			break
		}
		cur := e.nodes[head]
		if int(cur.depth) > res.Depth {
			res.Depth = int(cur.depth)
		}
		var vecs [][]uint64
		if enumerate {
			vecs = e.enumInputVectors()
		} else {
			// Sampled vectors are a pure function of the design state (see
			// sampleSeed): compute the seed before child expansion reuses
			// the packing scratch.
			vecs = e.sampleInputVectors(sampleSeed(e.opt.Seed, e.packRegs(cur.regs)))
		}
		for _, inputs := range vecs {
			if err := e.sim.LoadStateWithInputs(cur.regs, inputs); err != nil {
				// Impossible by construction; treat as engine error.
				return Result{Status: StatusError, Err: err}
			}
			env := e.sim.Env()
			// Monitors read full-design indices: under a cone, scatter the
			// support values into a full-width row first.
			row := e.sliceRow(env)
			histBuf[0] = row
			for k := 1; k <= e.c.PastDepth; k++ {
				if k-1 < len(cur.hist) {
					histBuf[k] = cur.hist[k-1]
				} else {
					histBuf[k] = e.zeroEnv
				}
			}
			e.mon.SetState(cur.alive, cur.sat)
			out := e.mon.Step(histBuf)
			if out.AnteCompleted {
				res.NonVacuous = true
			}
			if out.Violated {
				res.Status = StatusCEX
				res.States = nVisited
				res.CEX = e.buildCEX(head, inputs, int(cur.depth), out.ViolatedAge)
				return res
			}
			alive, sat := e.mon.State()

			// Snapshot the sampled row (into reused scratch) before Step
			// mutates the live env behind it.
			if e.c.PastDepth > 0 {
				copy(e.envScratch, row)
			}
			e.sim.Step()

			// Dedup before materialising the child: the key is computed
			// from scratch buffers, and regs/hist/inVec are only copied
			// out (allocated) for states not seen before.
			e.sim.CopyStateInto(e.regBuf)
			childHist := e.histScratch[:0]
			if e.c.PastDepth > 0 {
				childHist = append(childHist, e.envScratch)
				for k := 0; k < e.c.PastDepth-1 && k < len(cur.hist); k++ {
					childHist = append(childHist, cur.hist[k])
				}
				e.histScratch = childHist
			}
			if !seen(e.regBuf, alive, sat, childHist) {
				inVec := inputs
				if !enumerate {
					// Sampled vectors live in reused scratch; retain a copy.
					inVec = e.copyU64(inputs)
				}
				child := node{
					regs:   e.copyU64(e.regBuf),
					alive:  alive,
					sat:    sat,
					parent: int32(head),
					inVec:  inVec,
					depth:  cur.depth + 1,
				}
				if e.c.PastDepth > 0 {
					// childHist[0] aliases envScratch; deep-copy it. The
					// older entries belong to retained ancestor nodes and
					// are immutable, so aliasing them is safe.
					child.hist = append(make([][]uint64, 0, len(childHist)), childHist...)
					child.hist[0] = e.copyU64(childHist[0])
				}
				e.nodes = append(e.nodes, child)
			}
		}
	}
	res.States = nVisited
	res.Exhaustive = enumerate && closed
	return res
}

// packRegs bit-packs the register values into the engine's scratch
// buffer: one bit per state bit (StateBits() total) instead of one word
// per register, in netlist Regs order. Values are invariantly masked to
// their widths, so packing is injective — exact keys stay exact — while
// visited-set keys and hashing shrink to the information-theoretic size
// (a design with 40 one-bit registers keys on 5 bytes, not 320).
func (e *Engine) packRegs(regs []uint64) []uint64 {
	buf := e.packBuf
	for i := range buf {
		buf[i] = 0
	}
	pos := 0
	for i, v := range regs {
		w := e.regWidths[i]
		word, off := pos>>6, uint(pos&63)
		buf[word] |= v << off
		if off+uint(w) > 64 {
			buf[word+1] |= v >> (64 - off)
		}
		pos += w
	}
	return buf
}

// stateKeyHash encodes a product state exactly into the engine's reused
// key buffer — bit-packed register values, the monitor's alive mask, and
// (when $past is used) the history of the assertion's support nets — and
// computes the probing hash over the same words in the same pass.
// Exhaustive mode uses these exact keys so Proven/Vacuous verdicts are
// sound.
func (e *Engine) stateKeyHash(regs []uint64, alive, sat uint64, hist [][]uint64) ([]byte, uint64) {
	buf := e.keyBuf[:0]
	h := uint64(stateHashSeed)
	put := func(v uint64) {
		buf = le64Append(buf, v)
		h = stateMix(h, v)
	}
	for _, v := range e.packRegs(regs) {
		put(v)
	}
	put(alive)
	if e.c.Ranged {
		put(sat)
	}
	// Histories shorter than PastDepth pad with the zero env — exactly
	// what the monitor substitutes for missing history, so the padded
	// key identifies behaviourally identical states (and keys keep one
	// fixed length per call, which the exact set's arena relies on).
	for k := 0; k < e.c.PastDepth; k++ {
		row := e.zeroEnv
		if k < len(hist) {
			row = hist[k]
		}
		for _, idx := range e.support {
			put(row[idx])
		}
	}
	e.keyBuf = buf
	return buf, h
}

// stateKeyLen is the fixed byte length of this call's state keys.
func (e *Engine) stateKeyLen() int {
	words := len(e.packBuf) + 1
	if e.c != nil && e.c.Ranged {
		words++
	}
	if e.c != nil {
		words += e.c.PastDepth * len(e.support)
	}
	return words * 8
}

// stateHash fingerprints a product state for bounded-mode deduplication.
// Hash compaction (64-bit fingerprints instead of full state keys, as in
// SPIN's bitstate hashing) keeps the visited set allocation-free; a
// collision (probability ~n^2/2^64 per call) can only prune bounded
// exploration, which is approximate by construction and never claims a
// proof — exhaustive mode uses stateKey's exact keys. The hash is a pure
// function of the state, so verdicts stay deterministic and identical
// across sequential and parallel runs.
func (e *Engine) stateHash(regs []uint64, alive, sat uint64, hist [][]uint64) uint64 {
	h := uint64(stateHashSeed)
	mix := func(v uint64) {
		h = stateMix(h, v)
	}
	for _, v := range e.packRegs(regs) {
		mix(v)
	}
	mix(alive)
	if e.c.Ranged {
		mix(sat)
	}
	// Zero-pad short histories exactly as stateKey does: equal keys must
	// hash equally for the exact set's probing to be correct.
	for k := 0; k < e.c.PastDepth; k++ {
		row := e.zeroEnv
		if k < len(hist) {
			row = hist[k]
		}
		for _, idx := range e.support {
			mix(row[idx])
		}
	}
	return h
}

// unpackInputs splits a packed bit vector (little-endian across words)
// into per-input values by the given widths. Packing is positional, so
// designs wider than 64 input bits unpack every input — the old
// single-word form silently zeroed everything past bit 63.
func unpackInputs(vals []uint64, widths []int, words []uint64) {
	pos := 0
	for i, w := range widths {
		word, off := pos>>6, uint(pos&63)
		v := words[word] >> off
		if off+uint(w) > 64 {
			v |= words[word+1] << (64 - off)
		}
		vals[i] = v & verilog.WidthMask(w)
		pos += w
	}
}

// inputWords is the packed-word count for a set of input widths (at
// least 1, so zero-input designs still have a draw buffer).
func inputWords(widths []int) int {
	total := 0
	for _, w := range widths {
		total += w
	}
	n := (total + 63) / 64
	if n == 0 {
		n = 1
	}
	return n
}

// enumInputVectors yields the full data-input enumeration — a pure
// function of the netlist, cached across states and calls.
func (e *Engine) enumInputVectors() [][]uint64 {
	total := 0
	for _, w := range e.widths {
		total += w
	}
	n := 1 << uint(total)
	if len(e.enumVecs) != n {
		e.enumVecs = enumerateInputs(e.widths)
	}
	return e.enumVecs
}

// enumerateInputs builds the full input enumeration for the widths.
func enumerateInputs(widths []int) [][]uint64 {
	total := 0
	for _, w := range widths {
		total += w
	}
	n := 1 << uint(total)
	out := make([][]uint64, 0, n)
	for b := 0; b < n; b++ {
		vals := make([]uint64, len(widths))
		unpackInputs(vals, widths, []uint64{uint64(b)})
		out = append(out, vals)
	}
	return out
}

// sampleInputVectors yields the bounded-mode vectors to try from one
// state — the all-zeros and all-ones corners plus MaxInputSamples
// splitmix draws from the state's sampling stream — into reused scratch
// (consumers must copy what they retain). The same smSeed always yields
// the same vectors, which is what keeps bounded search identical between
// the per-property path and the shared-graph batched path.
func (e *Engine) sampleInputVectors(smSeed uint64) [][]uint64 {
	widths := e.widths
	n := e.opt.MaxInputSamples + 2
	if len(e.sampleVecs) != n || (n > 0 && len(e.sampleVecs[0]) != len(widths)) {
		e.sampleVecs = make([][]uint64, n)
		for i := range e.sampleVecs {
			e.sampleVecs[i] = make([]uint64, len(widths))
		}
	}
	fillSampleVectors(e.sampleVecs, widths, smSeed)
	return e.sampleVecs
}

// fillSampleVectors writes the bounded-mode vector set for one state into
// vecs (len MaxInputSamples+2): shared by the per-property engine and the
// graph builder so both derive identical edges. Designs up to 64 input
// bits draw exactly one stream word per vector (the historical pattern);
// wider designs draw one word per 64 packed bits so every input is
// randomized.
func fillSampleVectors(vecs [][]uint64, widths []int, smSeed uint64) {
	var buf [4]uint64
	nWords := inputWords(widths)
	words := buf[:]
	if nWords > len(buf) {
		words = make([]uint64, nWords)
	}
	words = words[:nWords]
	clear(words)
	unpackInputs(vecs[0], widths, words)
	for i := range words {
		words[i] = ^uint64(0)
	}
	unpackInputs(vecs[1], widths, words)
	sm := sm64(smSeed)
	for i := 2; i < len(vecs); i++ {
		for j := range words {
			words[j] = sm.next()
		}
		unpackInputs(vecs[i], widths, words)
	}
}

// buildCEX reconstructs the refuting stimulus from parent links and
// re-simulates it to capture the sampled trace.
func (e *Engine) buildCEX(head int, lastInputs []uint64, depth, violatedAge int) *CEX {
	var inputs [][]uint64
	for i := head; i >= 0 && e.nodes[i].parent >= 0; i = int(e.nodes[i].parent) {
		inputs = append(inputs, e.nodes[i].inVec)
	}
	// Reverse into chronological order and append the violating step.
	for l, r := 0, len(inputs)-1; l < r; l, r = l+1, r-1 {
		inputs[l], inputs[r] = inputs[r], inputs[l]
	}
	inputs = append(inputs, lastInputs)
	if e.cone != nil {
		// BFS vectors are reduced-layout; counter-examples are reported
		// (and replayed) in full-design terms.
		for i, u := range inputs {
			inputs[i] = e.expandInputVec(u)
		}
	}
	return e.replayCEX(inputs, depth, violatedAge)
}

func (e *Engine) replayCEX(inputs [][]uint64, depth, violatedAge int) *CEX {
	// The CEX outlives this call but the stimulus vectors may live in the
	// engine's arena or sampling scratch, so deep-copy them.
	retained := make([][]uint64, len(inputs))
	for i, u := range inputs {
		retained[i] = append([]uint64(nil), u...)
	}
	inputs = retained
	cex := &CEX{
		Inputs:         inputs,
		ViolationCycle: depth,
		AttemptCycle:   depth - violatedAge,
	}
	s := e.replaySim()
	s.ResetState()
	for _, u := range inputs {
		if err := s.SetInputs(u); err != nil {
			break
		}
		s.Settle()
		env := make([]uint64, len(s.Env()))
		copy(env, s.Env())
		cex.Sampled = append(cex.Sampled, env)
		s.Step()
	}
	return cex
}

// randomHunt drives randomized deep runs looking for violations that the
// truncated BFS missed. Returns a full result on violation or
// cancellation, nil otherwise.
func (e *Engine) randomHunt(ctx context.Context, res *Result) *Result {
	histDepth := e.c.PastDepth
	if cap(e.histBuf) < histDepth+1 {
		e.histBuf = make([][]uint64, histDepth+1)
	}
	histBuf := e.histBuf[:histDepth+1]
	// History ring: huntRing[k] holds the sampled env of k+1 cycles ago.
	// Rotation recycles the oldest buffer as the new head, so steady-state
	// runs allocate nothing.
	if histDepth > 0 && len(e.huntRing) < histDepth {
		e.huntRing = make([][]uint64, histDepth)
		for i := range e.huntRing {
			e.huntRing[i] = make([]uint64, e.monNets)
		}
	}
	ring := e.huntRing[:histDepth]
	for run := 0; run < e.opt.RandomRuns; run++ {
		if err := ctx.Err(); err != nil {
			r := ctxResult(err)
			return &r
		}
		s := e.hunt
		s.ResetState()
		e.mon.Reset()
		histLen := 0
		inputs := e.huntInputs[:0]
		// Each run's stimulus is its own pure splitmix stream — identical
		// across properties at the same seed, so the batched verifier can
		// simulate the run once for a whole batch.
		sm := sm64(huntSeed(e.opt.Seed, run))
		for t := 0; t < e.opt.RandomDepth; t++ {
			// Stimulus is always drawn over the full input layout (so runs
			// are identical with and without a cone, and CEXs replay on the
			// full design) and projected onto the cone for driving.
			u := e.randomStimulus(&sm, t)
			inputs = append(inputs, u)
			e.huntInputs = inputs
			if err := s.SetInputs(e.projectInputs(u)); err != nil {
				break
			}
			s.Settle()
			env := s.Env()
			row := e.sliceRow(env)
			histBuf[0] = row
			for k := 1; k <= histDepth; k++ {
				if k-1 < histLen {
					histBuf[k] = ring[k-1]
				} else {
					histBuf[k] = e.zeroEnv
				}
			}
			out := e.mon.Step(histBuf)
			if out.AnteCompleted {
				res.NonVacuous = true
			}
			if out.Violated {
				full := *res
				full.Status = StatusCEX
				full.CEX = e.replayCEX(inputs, t, out.ViolatedAge)
				if t > full.Depth {
					full.Depth = t
				}
				return &full
			}
			if histDepth > 0 {
				head := ring[histDepth-1]
				copy(head, row)
				copy(ring[1:], ring[:histDepth-1])
				ring[0] = head
				if histLen < histDepth {
					histLen++
				}
			}
			s.Step()
			if t > res.Depth {
				res.Depth = t
			}
		}
	}
	return nil
}

// ensureSliced returns the 64-lane machine for the bound netlist, or nil
// if the design cannot be sliced (cyclic comb logic). Cached per netlist.
func (e *Engine) ensureSliced() *verilog.SlicedMachine {
	if e.slicedFor != e.nl {
		e.slicedSim = verilog.NewSlicedMachine(e.nl)
		e.slicedFor = e.nl
	}
	return e.slicedSim
}

// laneMonitors returns SlicedLanes compiled monitors for the current
// property — one per lane, since monitor state is scalar per trajectory.
func (e *Engine) laneMonitors() []*sva.Monitor {
	if e.slMonsFor == e.c && len(e.slMons) == verilog.SlicedLanes {
		return e.slMons
	}
	mons := make([]*sva.Monitor, verilog.SlicedLanes)
	for i := range mons {
		m, err := sva.NewMonitorCompiled(e.c)
		if err != nil {
			return nil
		}
		mons[i] = m
	}
	e.slMons, e.slMonsFor = mons, e.c
	return mons
}

// slicedHunt is randomHunt on the 64-lane machine: one pass through the
// design advances 64 runs at once (lane l of block r0 is scalar run
// r0+l), with per-lane monitors stepping over gathered support rows. It
// emulates the scalar hunt exactly — identical per-run stimulus streams,
// run-major accumulation of NonVacuous/Depth, and the first violation in
// run order wins — so verdicts are bit-identical (dverify oracle 7).
// Returns (result, true) when the sliced path ran; (nil, false) defers
// to the scalar hunt.
func (e *Engine) slicedHunt(ctx context.Context, res *Result) (*Result, bool) {
	if e.opt.Slices == SlicesOff || e.backend != BackendCompiled {
		return nil, false
	}
	msl := e.ensureSliced()
	if msl == nil {
		return nil, false
	}
	mons := e.laneMonitors()
	if mons == nil {
		return nil, false
	}
	const lanes = verilog.SlicedLanes
	histDepth := e.c.PastDepth
	if cap(e.histBuf) < histDepth+1 {
		e.histBuf = make([][]uint64, histDepth+1)
	}
	histBuf := e.histBuf[:histDepth+1]
	// Per-lane history: a ring of histDepth+1 full-width rows per lane
	// (slot t mod histDepth+1 holds cycle t's row). Only support
	// positions are ever written; monitors read nothing else.
	rows := make([][]uint64, lanes*(histDepth+1))
	for i := range rows {
		rows[i] = e.allocU64(e.monNets)
	}
	rowAt := func(l, slot int) []uint64 { return rows[l*(histDepth+1)+slot] }
	// Machine-side support indices (reduced under a cone).
	src := e.monSupport
	if e.cone != nil {
		src = e.coneSrc
	}
	nIn := len(e.fullNl.Inputs)
	var (
		sms     [lanes]sm64
		violT   [lanes]int
		violAge [lanes]int
		ante    [lanes]bool
		laneBuf [lanes]uint64
		inputs  [lanes][][]uint64
	)
	for r0 := 0; r0 < e.opt.RandomRuns; r0 += lanes {
		if err := ctx.Err(); err != nil {
			r := ctxResult(err)
			return &r, true
		}
		n := lanes
		if e.opt.RandomRuns-r0 < n {
			n = e.opt.RandomRuns - r0
		}
		msl.ResetState()
		for l := 0; l < n; l++ {
			mons[l].Reset()
			sms[l] = sm64(huntSeed(e.opt.Seed, r0+l))
			violT[l] = -1
			ante[l] = false
			inputs[l] = inputs[l][:0]
		}
		for t := 0; t < e.opt.RandomDepth; t++ {
			alive := 0
			for l := 0; l < n; l++ {
				if violT[l] < 0 {
					alive++
				}
			}
			if alive == 0 {
				break
			}
			// Draw each live lane's stimulus from its own stream (full
			// input layout, exactly as the scalar hunt). A violated lane's
			// run already ended in run-order terms; its machine lanes keep
			// stale values that influence nothing.
			for l := 0; l < n; l++ {
				if violT[l] >= 0 {
					continue
				}
				u := e.allocU64(nIn)
				e.fillStimulus(&sms[l], t, u)
				inputs[l] = append(inputs[l], u)
			}
			for pos := range e.nl.Inputs {
				fullPos := pos
				if e.cone != nil {
					fullPos = e.inProj[pos]
				}
				for l := 0; l < n; l++ {
					if violT[l] < 0 {
						laneBuf[l] = inputs[l][t][fullPos]
					} else {
						laneBuf[l] = 0
					}
				}
				msl.SetInputLanes(pos, laneBuf[:n])
			}
			msl.Settle()
			slot := t % (histDepth + 1)
			for j, fullIdx := range e.monSupport {
				msl.Lanes(src[j], laneBuf[:n])
				for l := 0; l < n; l++ {
					if violT[l] < 0 {
						rowAt(l, slot)[fullIdx] = laneBuf[l]
					}
				}
			}
			for l := 0; l < n; l++ {
				if violT[l] >= 0 {
					continue
				}
				histBuf[0] = rowAt(l, slot)
				for k := 1; k <= histDepth; k++ {
					if t-k >= 0 {
						histBuf[k] = rowAt(l, (t-k)%(histDepth+1))
					} else {
						histBuf[k] = e.zeroEnv
					}
				}
				out := mons[l].Step(histBuf)
				if out.AnteCompleted {
					ante[l] = true
				}
				if out.Violated {
					violT[l] = t
					violAge[l] = out.ViolatedAge
				}
			}
			msl.Step()
		}
		// Run-major accumulation: lane l's contributions land exactly when
		// scalar run r0+l's would, and the first violation in run order
		// returns before later runs (which the scalar hunt never executed)
		// can contribute anything.
		for l := 0; l < n; l++ {
			if ante[l] {
				res.NonVacuous = true
			}
			if violT[l] >= 0 {
				full := *res
				full.Status = StatusCEX
				full.CEX = e.replayCEX(inputs[l][:violT[l]+1], violT[l], violAge[l])
				if violT[l] > full.Depth {
					full.Depth = violT[l]
				}
				return &full, true
			}
			if e.opt.RandomDepth-1 > res.Depth {
				res.Depth = e.opt.RandomDepth - 1
			}
		}
	}
	return nil, true
}

// randomStimulus draws one hunt stimulus vector from the run's stream,
// biasing early cycles toward asserting reset-like inputs so deep FSM
// behaviour past reset is exercised. The draw pattern is fixed (one word
// per input, plus one for the reset bias) so a stream position depends
// only on the cycle index.
func (e *Engine) randomStimulus(sm *sm64, t int) []uint64 {
	vals := e.allocU64(len(e.fullNl.Inputs))
	e.fillStimulus(sm, t, vals)
	return vals
}

// fillStimulus is randomStimulus without the arena allocation (shared
// with the batched hunt-trace builder, which must draw identical vectors).
// Vectors cover the FULL input layout even under a cone, so the stream is
// cone-independent.
func (e *Engine) fillStimulus(sm *sm64, t int, vals []uint64) {
	for i, idx := range e.fullNl.Inputs {
		n := e.fullNl.Nets[idx]
		vals[i] = sm.next() & n.Mask()
		if e.fullReset[i] {
			if t < 2 {
				vals[i] = 1 & n.Mask()
			} else if sm.next()&15 != 0 {
				vals[i] = 0
			}
		}
	}
}

func isResetLike(name string) bool {
	for i := 0; i+2 < len(name); i++ {
		if name[i] == 'r' && name[i+1] == 's' && name[i+2] == 't' {
			return true
		}
		if i+4 < len(name) && name[i] == 'r' && name[i+1] == 'e' && name[i+2] == 's' && name[i+3] == 'e' && name[i+4] == 't' {
			return true
		}
	}
	return false
}
