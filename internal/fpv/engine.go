package fpv

import (
	"encoding/binary"
	"math/rand"

	"assertionbench/internal/sim"
	"assertionbench/internal/sva"
	"assertionbench/internal/verilog"
)

// VerifyCompiled model-checks one compiled assertion against the netlist.
func VerifyCompiled(nl *verilog.Netlist, c *sva.Compiled, opt Options) Result {
	opt = opt.withDefaults()
	eng := &engine{
		nl:      nl,
		c:       c,
		mon:     sva.NewMonitor(c),
		opt:     opt,
		sim:     sim.New(nl),
		zeroEnv: make([]uint64, len(nl.Nets)),
		rng:     rand.New(rand.NewSource(opt.Seed)),
	}
	exhaustive := nl.InputBits() <= opt.MaxInputBits
	res := eng.bfs(exhaustive)
	if res.Status == StatusCEX {
		return res
	}
	if res.Exhaustive {
		if res.NonVacuous {
			res.Status = StatusProven
		} else {
			res.Status = StatusVacuous
		}
		return res
	}
	// Bounded: hunt violations along randomized deep runs before settling
	// for a bounded pass.
	if r := eng.randomHunt(&res); r != nil {
		return *r
	}
	res.Status = StatusBoundedPass
	return res
}

type node struct {
	regs   []uint64
	hist   [][]uint64 // most recent first; len <= PastDepth
	alive  uint64
	sat    uint64
	parent int32
	inVec  []uint64 // input vector that led here (nil for root)
	depth  int32
}

type engine struct {
	nl      *verilog.Netlist
	c       *sva.Compiled
	mon     *sva.Monitor
	opt     Options
	sim     *sim.Simulator
	zeroEnv []uint64
	rng     *rand.Rand

	nodes []node
}

// bfs explores the product of design states and monitor states.
func (e *engine) bfs(enumerate bool) Result {
	res := Result{}
	visited := map[string]struct{}{}
	root := node{regs: make([]uint64, len(e.nl.Regs)), parent: -1}
	e.nodes = e.nodes[:0]
	e.nodes = append(e.nodes, root)
	visited[e.key(&root)] = struct{}{}
	closed := true

	histBuf := make([][]uint64, e.c.PastDepth+1)

	for head := 0; head < len(e.nodes); head++ {
		if len(visited) >= e.opt.MaxProductStates {
			closed = false
			break
		}
		cur := e.nodes[head]
		if int(cur.depth) > res.Depth {
			res.Depth = int(cur.depth)
		}
		for _, inputs := range e.inputVectors(enumerate) {
			if err := e.sim.LoadStateWithInputs(cur.regs, inputs); err != nil {
				// Impossible by construction; treat as engine error.
				return Result{Status: StatusError, Err: err}
			}
			env := e.sim.Env()
			histBuf[0] = env
			for k := 1; k <= e.c.PastDepth; k++ {
				if k-1 < len(cur.hist) {
					histBuf[k] = cur.hist[k-1]
				} else {
					histBuf[k] = e.zeroEnv
				}
			}
			e.mon.SetState(cur.alive, cur.sat)
			out := e.mon.Step(histBuf)
			if out.AnteCompleted {
				res.NonVacuous = true
			}
			if out.Violated {
				res.Status = StatusCEX
				res.States = len(visited)
				res.CEX = e.buildCEX(head, inputs, int(cur.depth), out.ViolatedAge)
				return res
			}
			alive, sat := e.mon.State()

			// Snapshot the sampled env before Step mutates the live slice.
			var envCopy []uint64
			if e.c.PastDepth > 0 {
				envCopy = make([]uint64, len(env))
				copy(envCopy, env)
			}
			e.sim.Step()
			child := node{
				regs:   e.sim.CopyState(),
				alive:  alive,
				sat:    sat,
				parent: int32(head),
				inVec:  inputs,
				depth:  cur.depth + 1,
			}
			if e.c.PastDepth > 0 {
				child.hist = make([][]uint64, 0, e.c.PastDepth)
				child.hist = append(child.hist, envCopy)
				for k := 0; k < e.c.PastDepth-1 && k < len(cur.hist); k++ {
					child.hist = append(child.hist, cur.hist[k])
				}
			}
			k := e.key(&child)
			if _, seen := visited[k]; !seen {
				visited[k] = struct{}{}
				e.nodes = append(e.nodes, child)
			}
		}
	}
	res.States = len(visited)
	res.Exhaustive = enumerate && closed
	return res
}

// key encodes the product state for deduplication: register values, the
// monitor's alive mask, and (when $past is used) the history of the
// assertion's support nets.
func (e *engine) key(n *node) string {
	buf := make([]byte, 0, 8*(len(n.regs)+2))
	var tmp [8]byte
	for _, v := range n.regs {
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	binary.LittleEndian.PutUint64(tmp[:], n.alive)
	buf = append(buf, tmp[:]...)
	if e.c.Ranged {
		binary.LittleEndian.PutUint64(tmp[:], n.sat)
		buf = append(buf, tmp[:]...)
	}
	if e.c.PastDepth > 0 {
		support := e.c.SupportNets()
		for _, h := range n.hist {
			for _, idx := range support {
				binary.LittleEndian.PutUint64(tmp[:], h[idx])
				buf = append(buf, tmp[:]...)
			}
		}
	}
	return string(buf)
}

// inputVectors yields the data-input vectors to try from one state: the
// full enumeration when feasible, otherwise corner patterns plus random
// samples.
func (e *engine) inputVectors(enumerate bool) [][]uint64 {
	widths := make([]int, len(e.nl.Inputs))
	total := 0
	for i, idx := range e.nl.Inputs {
		widths[i] = e.nl.Nets[idx].Width
		total += widths[i]
	}
	unpack := func(bits uint64) []uint64 {
		vals := make([]uint64, len(widths))
		for i, w := range widths {
			vals[i] = bits & verilog.WidthMask(w)
			bits >>= uint(w)
		}
		return vals
	}
	if enumerate {
		n := 1 << uint(total)
		out := make([][]uint64, 0, n)
		for b := 0; b < n; b++ {
			out = append(out, unpack(uint64(b)))
		}
		return out
	}
	out := make([][]uint64, 0, e.opt.MaxInputSamples+2)
	out = append(out, unpack(0), unpack(^uint64(0)))
	for i := 0; i < e.opt.MaxInputSamples; i++ {
		out = append(out, unpack(e.rng.Uint64()))
	}
	return out
}

// buildCEX reconstructs the refuting stimulus from parent links and
// re-simulates it to capture the sampled trace.
func (e *engine) buildCEX(head int, lastInputs []uint64, depth, violatedAge int) *CEX {
	var inputs [][]uint64
	for i := head; i >= 0 && e.nodes[i].parent >= 0; i = int(e.nodes[i].parent) {
		inputs = append(inputs, e.nodes[i].inVec)
	}
	// Reverse into chronological order and append the violating step.
	for l, r := 0, len(inputs)-1; l < r; l, r = l+1, r-1 {
		inputs[l], inputs[r] = inputs[r], inputs[l]
	}
	inputs = append(inputs, lastInputs)
	return e.replayCEX(inputs, depth, violatedAge)
}

func (e *engine) replayCEX(inputs [][]uint64, depth, violatedAge int) *CEX {
	cex := &CEX{
		Inputs:         inputs,
		ViolationCycle: depth,
		AttemptCycle:   depth - violatedAge,
	}
	s := sim.New(e.nl)
	for _, u := range inputs {
		if err := s.SetInputs(u); err != nil {
			break
		}
		s.Settle()
		env := make([]uint64, len(s.Env()))
		copy(env, s.Env())
		cex.Sampled = append(cex.Sampled, env)
		s.Step()
	}
	return cex
}

// randomHunt drives randomized deep runs looking for violations that the
// truncated BFS missed. Returns a full result on violation, nil otherwise.
func (e *engine) randomHunt(res *Result) *Result {
	histDepth := e.c.PastDepth
	for run := 0; run < e.opt.RandomRuns; run++ {
		s := sim.New(e.nl)
		e.mon.Reset()
		var hist [][]uint64
		var inputs [][]uint64
		for t := 0; t < e.opt.RandomDepth; t++ {
			u := e.randomStimulus(t)
			inputs = append(inputs, u)
			if err := s.SetInputs(u); err != nil {
				break
			}
			s.Settle()
			env := s.Env()
			histBuf := make([][]uint64, histDepth+1)
			histBuf[0] = env
			for k := 1; k <= histDepth; k++ {
				if k-1 < len(hist) {
					histBuf[k] = hist[k-1]
				} else {
					histBuf[k] = e.zeroEnv
				}
			}
			out := e.mon.Step(histBuf)
			if out.AnteCompleted {
				res.NonVacuous = true
			}
			if out.Violated {
				full := *res
				full.Status = StatusCEX
				full.CEX = e.replayCEX(inputs, t, out.ViolatedAge)
				if t > full.Depth {
					full.Depth = t
				}
				return &full
			}
			if histDepth > 0 {
				envCopy := make([]uint64, len(env))
				copy(envCopy, env)
				hist = append([][]uint64{envCopy}, hist...)
				if len(hist) > histDepth {
					hist = hist[:histDepth]
				}
			}
			s.Step()
			if t > res.Depth {
				res.Depth = t
			}
		}
	}
	return nil
}

// randomStimulus biases early cycles toward asserting reset-like inputs so
// deep FSM behaviour past reset is exercised.
func (e *engine) randomStimulus(t int) []uint64 {
	vals := make([]uint64, len(e.nl.Inputs))
	for i, idx := range e.nl.Inputs {
		n := e.nl.Nets[idx]
		vals[i] = e.rng.Uint64() & n.Mask()
		if isResetLike(n.Name) {
			if t < 2 {
				vals[i] = 1 & n.Mask()
			} else if e.rng.Intn(16) != 0 {
				vals[i] = 0
			}
		}
	}
	return vals
}

func isResetLike(name string) bool {
	for i := 0; i+2 < len(name); i++ {
		if name[i] == 'r' && name[i+1] == 's' && name[i+2] == 't' {
			return true
		}
		if i+4 < len(name) && name[i] == 'r' && name[i+1] == 'e' && name[i+2] == 's' && name[i+3] == 'e' && name[i+4] == 't' {
			return true
		}
	}
	return false
}
