package fpv

import (
	"assertionbench/internal/sim"
	"assertionbench/internal/sva"
	"assertionbench/internal/verilog"
)

// TraceViolation reports one assertion failure observed on a recorded
// simulation trace.
type TraceViolation struct {
	// AttemptCycle is where the violated evaluation attempt started.
	AttemptCycle int
	// ViolationCycle is where the consequent failed.
	ViolationCycle int
}

// CheckTrace runs the assertion's monitor over a recorded trace and
// returns every violation plus whether the antecedent ever matched
// (non-vacuity witness). This is the simulation-based ABV counterpart of
// the model checker: sound for refutation, not for proof.
func CheckTrace(nl *verilog.Netlist, a *sva.Assertion, tr *sim.Trace) ([]TraceViolation, bool, error) {
	c, err := sva.Compile(a, nl)
	if err != nil {
		return nil, false, err
	}
	var violations []TraceViolation
	nonVacuous := false
	zero := make([]uint64, len(nl.Nets))
	mon := sva.NewMonitor(c)
	hist := make([][]uint64, c.PastDepth+1)
	for t := 0; t < tr.Len(); t++ {
		hist[0] = tr.Cycles[t]
		for k := 1; k <= c.PastDepth; k++ {
			if t-k >= 0 {
				hist[k] = tr.Cycles[t-k]
			} else {
				hist[k] = zero
			}
		}
		out := mon.Step(hist)
		if out.AnteCompleted {
			nonVacuous = true
		}
		if out.Violated {
			violations = append(violations, TraceViolation{
				AttemptCycle:   t - out.ViolatedAge,
				ViolationCycle: t,
			})
		}
	}
	return violations, nonVacuous, nil
}
