package fpv

import (
	"assertionbench/internal/sim"
	"assertionbench/internal/sva"
	"assertionbench/internal/verilog"
)

// TraceViolation reports one assertion failure observed on a recorded
// simulation trace.
type TraceViolation struct {
	// AttemptCycle is where the violated evaluation attempt started.
	AttemptCycle int
	// ViolationCycle is where the consequent failed.
	ViolationCycle int
}

// CheckTrace runs the assertion's monitor over a recorded trace and
// returns every violation plus whether the antecedent ever matched
// (non-vacuity witness). This is the simulation-based ABV counterpart of
// the model checker: sound for refutation, not for proof.
func CheckTrace(nl *verilog.Netlist, a *sva.Assertion, tr *sim.Trace) ([]TraceViolation, bool, error) {
	c, err := sva.Compile(a, nl)
	if err != nil {
		return nil, false, err
	}
	violations, nonVacuous := CheckTraceCompiled(nl, c, tr, nil)
	return violations, nonVacuous, nil
}

// StepFunc advances a monitor by one sampled cycle. The differential
// harness (internal/dverify) injects mutated steppers through this seam
// to prove its oracles catch monitor defects; nil means Monitor.Step.
type StepFunc func(m *sva.Monitor, hist [][]uint64) sva.Outcome

// CheckTraceCompiled is the single trace-checking loop behind CheckTrace
// and the differential harness: history is zero-padded before the trace
// start (the power-on convention the model checker's root shares), so a
// trace recorded from power-on is checked exactly as the engine would
// explore it. The monitor runs on the default compiled backend (falling
// back to the closure evaluators only if lowering fails, which the
// dverify harness would flag); CheckTraceBackend selects explicitly.
func CheckTraceCompiled(nl *verilog.Netlist, c *sva.Compiled, tr *sim.Trace, step StepFunc) ([]TraceViolation, bool) {
	v, nonVacuous, err := CheckTraceBackend(nl, c, tr, step, BackendCompiled)
	if err != nil {
		v, nonVacuous, _ = CheckTraceBackend(nl, c, tr, step, BackendInterp)
	}
	return v, nonVacuous
}

// CheckTraceBackend runs the trace-checking loop with the monitor on the
// chosen execution backend. The only possible error is a lowering failure
// on the compiled backend.
func CheckTraceBackend(nl *verilog.Netlist, c *sva.Compiled, tr *sim.Trace, step StepFunc, backend string) ([]TraceViolation, bool, error) {
	var mon *sva.Monitor
	if backend == BackendCompiled {
		m, err := sva.NewMonitorCompiled(c)
		if err != nil {
			return nil, false, err
		}
		mon = m
	} else {
		mon = sva.NewMonitor(c)
	}
	if step == nil {
		step = func(m *sva.Monitor, hist [][]uint64) sva.Outcome { return m.Step(hist) }
	}
	var violations []TraceViolation
	nonVacuous := false
	zero := make([]uint64, len(nl.Nets))
	hist := make([][]uint64, c.PastDepth+1)
	for t := 0; t < tr.Len(); t++ {
		hist[0] = tr.Cycles[t]
		for k := 1; k <= c.PastDepth; k++ {
			if t-k >= 0 {
				hist[k] = tr.Cycles[t-k]
			} else {
				hist[k] = zero
			}
		}
		out := step(mon, hist)
		if out.AnteCompleted {
			nonVacuous = true
		}
		if out.Violated {
			violations = append(violations, TraceViolation{
				AttemptCycle:   t - out.ViolatedAge,
				ViolationCycle: t,
			})
		}
	}
	return violations, nonVacuous, nil
}
