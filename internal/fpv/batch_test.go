package fpv

import (
	"context"
	"fmt"
	"testing"

	"assertionbench/internal/sva"
	"assertionbench/internal/verilog"
)

// diffResult compares two results field by field, CEX stimulus included.
func diffResult(a, b Result) string {
	switch {
	case a.Status != b.Status:
		return fmt.Sprintf("status %v vs %v", a.Status, b.Status)
	case a.NonVacuous != b.NonVacuous:
		return fmt.Sprintf("nonvacuous %v vs %v", a.NonVacuous, b.NonVacuous)
	case a.Exhaustive != b.Exhaustive:
		return fmt.Sprintf("exhaustive %v vs %v", a.Exhaustive, b.Exhaustive)
	case a.States != b.States:
		return fmt.Sprintf("states %d vs %d", a.States, b.States)
	case a.Depth != b.Depth:
		return fmt.Sprintf("depth %d vs %d", a.Depth, b.Depth)
	case (a.CEX == nil) != (b.CEX == nil):
		return fmt.Sprintf("cex presence %v vs %v", a.CEX != nil, b.CEX != nil)
	}
	if a.CEX == nil {
		return ""
	}
	if a.CEX.ViolationCycle != b.CEX.ViolationCycle || a.CEX.AttemptCycle != b.CEX.AttemptCycle {
		return fmt.Sprintf("cex cycles %d/%d vs %d/%d",
			a.CEX.ViolationCycle, a.CEX.AttemptCycle, b.CEX.ViolationCycle, b.CEX.AttemptCycle)
	}
	if len(a.CEX.Inputs) != len(b.CEX.Inputs) {
		return fmt.Sprintf("cex stimulus length %d vs %d", len(a.CEX.Inputs), len(b.CEX.Inputs))
	}
	for t := range a.CEX.Inputs {
		for i := range a.CEX.Inputs[t] {
			if a.CEX.Inputs[t][i] != b.CEX.Inputs[t][i] {
				return fmt.Sprintf("cex stimulus cycle %d input %d: %#x vs %#x",
					t, i, a.CEX.Inputs[t][i], b.CEX.Inputs[t][i])
			}
		}
	}
	return ""
}

// batchCases is a spread of designs and property lists covering proven,
// vacuous, refuted, ranged, $past-heavy and bounded-mode outcomes.
var batchCases = []struct {
	name, src, top string
	props          []string
}{
	{"counter", counterSrc, "counter", []string{
		"rst == 1 |=> count == 0",
		"en == 1 && rst == 0 && count < 15 |=> count == $past(count) + 1",
		"en == 1 |=> count == 0",   // refutable
		"count == 500 |-> en == 1", // vacuous
		"en == 0 && rst == 0 |=> $stable(count)",
	}},
	{"arbiter", arbiterSrc, "arb2", []string{
		"rst == 1 |=> gnt_ == 0",
		"req1 == 1 && req2 == 0 |-> gnt1 == 1", // refutable
		"req2 == 0 |-> gnt2 == 0",
		"gnt_ == 0 |-> gnt2 == (req2 && !req1)",
	}},
	{"delayed_ack", delayedAckSrc, "delayed_ack", []string{
		"st == 0 && req == 1 |-> ##[1:3] ack == 1",
		"st == 0 && req == 1 |-> ##[1:2] ack == 1",
		"$rose(ack) |=> ack == 0",
	}},
	{"wide_adder", `
module adder(input [15:0] a, input [15:0] b, output [16:0] sum);
  assign sum = a + b;
endmodule
`, "adder", []string{
		"1 |-> sum == a + b",
		"1 |-> sum == a - b", // refutable, bounded
		"a == 0 |=> $past(a) == 0",
	}},
}

// TestBatchMatchesPerProperty checks VerifyBatch against the per-property
// reference engine field for field (CEX stimulus included) across
// exhaustive-friendly and starved budgets.
func TestBatchMatchesPerProperty(t *testing.T) {
	budgets := []Options{
		{},
		{MaxProductStates: 400, MaxInputSamples: 6, RandomRuns: 8, RandomDepth: 24, Seed: 9},
		{MaxProductStates: 60, MaxInputBits: 2, MaxInputSamples: 4, RandomRuns: 6, RandomDepth: 16, Seed: 3},
	}
	for _, tc := range batchCases {
		nl := elab(t, tc.src, tc.top)
		var cs []*sva.Compiled
		for _, p := range tc.props {
			a, err := sva.Parse(p)
			if err != nil {
				t.Fatalf("%s: parse %q: %v", tc.name, p, err)
			}
			c, err := sva.Compile(a, nl)
			if err != nil {
				t.Fatalf("%s: compile %q: %v", tc.name, p, err)
			}
			cs = append(cs, c)
		}
		for bi, opt := range budgets {
			for _, backend := range []string{BackendCompiled, BackendInterp} {
				opt := opt
				opt.Backend = backend
				batch := NewEngine().VerifyBatch(context.Background(), nl, cs, opt)
				ref := NewEngine()
				for i, c := range cs {
					want := ref.VerifyCompiled(context.Background(), nl, c, opt)
					if d := diffResult(batch[i], want); d != "" {
						t.Errorf("%s budget %d backend %s %q: batched differs from per-property: %s",
							tc.name, bi, backend, tc.props[i], d)
					}
				}
			}
		}
	}
}

// TestBatchCacheReuse verifies that one engine's exploration is reused by
// another through a shared cache, and that verdicts are unchanged.
func TestBatchCacheReuse(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	props := batchCases[0].props
	var cs []*sva.Compiled
	for _, p := range props {
		a, _ := sva.Parse(p)
		c, err := sva.Compile(a, nl)
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, c)
	}
	var cache GraphCache
	e1 := NewEngine()
	e1.Graphs = &cache
	first := e1.VerifyBatch(context.Background(), nl, cs, Options{})
	if cache.Len() == 0 {
		t.Fatal("batched verification did not populate the cache")
	}
	key := e1.graphKey(true)
	g1, _, _ := cache.lookup(key, cs[0].SupportNets())
	if g1 == nil {
		t.Fatal("cached graph not found under the engine's key")
	}
	e2 := NewEngine()
	e2.Graphs = &cache
	second := e2.VerifyBatch(context.Background(), nl, cs, Options{})
	g2, _, _ := cache.lookup(key, cs[0].SupportNets())
	if g1 != g2 {
		t.Error("second batch rebuilt the graph instead of reusing the cache")
	}
	for i := range first {
		if d := diffResult(first[i], second[i]); d != "" {
			t.Errorf("%q: cached rerun differs: %s", props[i], d)
		}
	}
	// A batch whose union needs nets outside the cached support rebuilds
	// over the merged union — and still matches the reference.
	uncached := NewEngine()
	for i, c := range cs {
		want := uncached.VerifyCompiled(context.Background(), nl, c, Options{})
		if d := diffResult(second[i], want); d != "" {
			t.Errorf("%q: cached batch differs from reference: %s", props[i], d)
		}
	}
}

// TestGraphCacheUnionGrowth checks that a cached graph over a narrow
// support union is rebuilt (merged) when a batch reads more nets, and
// then serves both unions.
func TestGraphCacheUnionGrowth(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	compile := func(src string) *sva.Compiled {
		a, err := sva.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		c, err := sva.Compile(a, nl)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	narrow := compile("rst == 1 |=> count == 0")
	wide := compile("en == 1 && rst == 0 && count < 15 |=> count == $past(count) + 1")
	var cache GraphCache
	e := NewEngine()
	e.Graphs = &cache
	// Reset-shaped properties discharge statically and would never build
	// a graph, so this test pins the search path explicitly.
	e.VerifyBatch(context.Background(), nl, []*sva.Compiled{narrow}, Options{Static: StaticOff})
	key := e.graphKey(true)
	g1, _, _ := cache.lookup(key, narrow.SupportNets())
	if g1 == nil {
		t.Fatal("narrow-union graph not cached")
	}
	if g, _, _ := cache.lookup(key, wide.SupportNets()); g != nil {
		t.Fatal("test premise: wide union should miss the narrow graph")
	}
	e.VerifyBatch(context.Background(), nl, []*sva.Compiled{wide, narrow}, Options{Static: StaticOff})
	g2, _, _ := cache.lookup(key, wide.SupportNets())
	if g2 == nil {
		t.Fatal("merged-union graph not cached")
	}
	if g3, _, _ := cache.lookup(key, narrow.SupportNets()); g3 != g2 {
		t.Error("merged graph does not serve the narrow union")
	}
	if cache.Len() != 1 {
		t.Errorf("union growth must replace in place, cache holds %d entries", cache.Len())
	}
}

// TestGraphCacheEviction checks the LRU memory bound.
func TestGraphCacheEviction(t *testing.T) {
	var cache GraphCache
	counter := elab(t, counterSrc, "counter")
	arbiter := elab(t, arbiterSrc, "arb2")
	e := NewEngine()
	e.Graphs = &cache
	verify := func(nl *verilog.Netlist, prop string) {
		a, _ := sva.Parse(prop)
		c, err := sva.Compile(a, nl)
		if err != nil {
			t.Fatal(err)
		}
		// Static discharge skips graph building; the LRU bound only
		// matters on the search path.
		e.VerifyBatch(context.Background(), nl, []*sva.Compiled{c}, Options{Static: StaticOff})
	}
	verify(counter, "rst == 1 |=> count == 0")
	if cache.Len() != 1 || cache.Bytes() <= 0 {
		t.Fatalf("cache after one design: len=%d bytes=%d", cache.Len(), cache.Bytes())
	}
	firstBytes := cache.Bytes()
	// Bound the cache just above the first graph: inserting the second
	// design must evict the least recently used entry.
	cache.SetMaxBytes(firstBytes + 64)
	verify(arbiter, "rst == 1 |=> gnt_ == 0")
	if cache.Len() != 1 {
		t.Fatalf("memory bound not enforced: len=%d bytes=%d (max %d)", cache.Len(), cache.Bytes(), firstBytes+64)
	}
	if g, _, _ := cache.lookup(e.graphKey(true), nil); g == nil {
		t.Error("most recent design evicted instead of the LRU one")
	}
	// Shrinking the bound below everything empties the cache...
	cache.SetMaxBytes(1)
	if cache.Len() != 0 || cache.Bytes() != 0 {
		t.Errorf("shrunken bound not applied: len=%d bytes=%d", cache.Len(), cache.Bytes())
	}
	// ...and verification still works (build-and-discard per call).
	verify(counter, "en == 1 |=> count == 0")
}

// TestGraphCacheInvalidationOnSourceChange: same design name, different
// source, elaborated separately — their graphs must never collide (the
// key follows the interned netlist pointer, which follows the source
// hash).
func TestGraphCacheInvalidationOnSourceChange(t *testing.T) {
	srcA := "module m(input clk, input a, output reg q); always @(posedge clk) q <= a; endmodule"
	srcB := "module m(input clk, input a, output reg q); always @(posedge clk) q <= ~a; endmodule"
	nlA := elab(t, srcA, "m")
	nlB := elab(t, srcB, "m")
	prop := "a == 1 |=> q == 1" // holds on A, refuted on B
	var cache GraphCache
	e := NewEngine()
	e.Graphs = &cache
	run := func(nl *verilog.Netlist) Result {
		a, _ := sva.Parse(prop)
		c, err := sva.Compile(a, nl)
		if err != nil {
			t.Fatal(err)
		}
		// Static discharge would bypass graph building entirely (the
		// refined walk proves A's property without search), so force
		// the search path: this test is about graph cache keying.
		return e.VerifyBatch(context.Background(), nl, []*sva.Compiled{c}, Options{Static: StaticOff})[0]
	}
	if r := run(nlA); r.Status != StatusProven {
		t.Fatalf("source A: %v, want proven", r.Status)
	}
	if r := run(nlB); r.Status != StatusCEX {
		t.Fatalf("source B after A cached: %v, want cex — stale graph served across a source change?", r.Status)
	}
	if cache.Len() != 2 {
		t.Errorf("expected two distinct graph entries, got %d", cache.Len())
	}
}

// TestVerifyAllDelegatesToBatch: VerifyAll's batched and per-property
// modes must agree result for result, including parse/compile errors
// interleaved with verdicts.
func TestVerifyAllDelegatesToBatch(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	srcs := []string{
		"rst == 1 |=> count == 0",
		"count == |-> en", // syntax error
		"en == 1 |=> count == 0",
		"nosuch == 1 |-> en == 1", // semantic error
		"count == 500 |-> en == 1",
	}
	batched := NewEngine().VerifyAll(context.Background(), nl, srcs, Options{})
	off := NewEngine().VerifyAll(context.Background(), nl, srcs, Options{Batch: BatchOff})
	if len(batched) != len(srcs) || len(off) != len(srcs) {
		t.Fatalf("result lengths: %d and %d, want %d", len(batched), len(off), len(srcs))
	}
	for i := range srcs {
		if batched[i].Status != off[i].Status {
			t.Errorf("%q: batch=%v off=%v", srcs[i], batched[i].Status, off[i].Status)
		}
		if batched[i].Status != StatusError {
			if d := diffResult(batched[i], off[i]); d != "" {
				t.Errorf("%q: %s", srcs[i], d)
			}
		}
	}
	want := []Status{StatusProven, StatusError, StatusCEX, StatusError, StatusVacuous}
	for i, w := range want {
		if batched[i].Status != w {
			t.Errorf("result %d = %v, want %v", i, batched[i].Status, w)
		}
	}
}

// TestBatchCancellation: a canceled context marks undecided batch results
// canceled without panicking or leaving stale verdicts.
func TestBatchCancellation(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	var cs []*sva.Compiled
	for _, p := range batchCases[0].props {
		a, _ := sva.Parse(p)
		c, err := sva.Compile(a, nl)
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, c)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, r := range NewEngine().VerifyBatch(ctx, nl, cs, Options{}) {
		if r.Status != StatusError || r.Err == nil {
			t.Errorf("canceled batch produced %v (err %v), want error", r.Status, r.Err)
		}
	}
}

// countdownCtx reports canceled after its Err method has been consulted
// n times — deterministic mid-batch cancellation without goroutines.
type countdownCtx struct {
	context.Context
	n int
}

func (c *countdownCtx) Err() error {
	if c.n > 0 {
		c.n--
		return nil
	}
	return context.Canceled
}

func (c *countdownCtx) Done() <-chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

// TestBatchMidPhaseCancellationMarksPending: a cancellation landing
// between phase-1 searches must mark ALREADY-SEARCHED but undecided
// (hunt-pending) properties canceled too — the interim result's zero
// Status is StatusProven and must never leak as a verdict.
func TestBatchMidPhaseCancellationMarksPending(t *testing.T) {
	// Wide inputs force bounded mode, so every property is hunt-pending
	// after its graph search.
	nl := elab(t, `
module adder(input [15:0] a, input [15:0] b, output [16:0] sum);
  assign sum = a + b;
endmodule
`, "adder")
	var cs []*sva.Compiled
	for _, p := range []string{"1 |-> sum == a + b", "a == 0 |-> sum == b"} {
		a, _ := sva.Parse(p)
		c, err := sva.Compile(a, nl)
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, c)
	}
	// Sweep the countdown so cancellation lands at every polling point of
	// the batch (entry check, per-property checks, search polls, hunt).
	for n := 0; n < 40; n++ {
		results := NewEngine().VerifyBatch(&countdownCtx{Context: context.Background(), n: n}, nl, cs, Options{
			MaxProductStates: 40, MaxInputSamples: 3, RandomRuns: 2, RandomDepth: 8,
		})
		for i, r := range results {
			if r.Status == StatusError && r.Err != nil {
				continue // canceled: fine
			}
			// A non-error result under cancellation must be a genuinely
			// decided verdict, identical to the uncanceled reference.
			want := NewEngine().VerifyCompiled(context.Background(), nl, cs[i], Options{
				MaxProductStates: 40, MaxInputSamples: 3, RandomRuns: 2, RandomDepth: 8,
			})
			if d := diffResult(r, want); d != "" {
				t.Fatalf("countdown %d result %d: leaked undecided verdict: %s", n, i, d)
			}
		}
	}
}
