package fpv

import (
	"encoding/binary"
	"fmt"
)

// Graph blob codec (artifact-store payload, see internal/astore).
//
// A Graph is already a bit-packed flat structure — []uint64 register
// images, int32 edge arrays — so the payload is essentially the arrays
// themselves behind a fixed header of scalars and lengths, as
// little-endian 64-bit words (int32 arrays are packed two per word).
// The optional hunt trace rides in the same payload so a warm process
// restores the bounded-mode stimulus history along with the graph.
// Integrity is the container's job (astore checksums every blob);
// DecodeGraph only validates the structural invariants that version
// skew or a foreign payload would break, and callers treat any error
// as a cache miss and re-explore.

// graphioVersion stamps the payload layout. Bump on any change to the
// word stream below; old blobs then fail DecodeGraph and are rebuilt.
const graphioVersion = 1

type graphEncIO struct {
	w []uint64
}

func (e *graphEncIO) word(v uint64) { e.w = append(e.w, v) }
func (e *graphEncIO) num(v int)     { e.w = append(e.w, uint64(int64(v))) }

func (e *graphEncIO) ints(s []int) {
	e.num(len(s))
	for _, v := range s {
		e.num(v)
	}
}

func (e *graphEncIO) words(s []uint64) {
	e.num(len(s))
	e.w = append(e.w, s...)
}

// i32s packs an int32 slice two entries per word.
func (e *graphEncIO) i32s(s []int32) {
	e.num(len(s))
	for i := 0; i < len(s); i += 2 {
		w := uint64(uint32(s[i]))
		if i+1 < len(s) {
			w |= uint64(uint32(s[i+1])) << 32
		}
		e.w = append(e.w, w)
	}
}

// EncodeGraph serializes g and an optional hunt trace into an
// artifact-store payload understood by DecodeGraph. The encoding is
// deterministic: equal graphs yield equal bytes.
func EncodeGraph(g *Graph, ht *HuntTrace) []byte {
	e := &graphEncIO{w: make([]uint64, 0, 16+len(g.Packed)+len(g.Rows)+len(g.Vecs))}
	e.word(graphioVersion)
	e.num(g.PackWords)
	e.num(g.NumInputs)
	e.word(boolWord(g.Enumerate))
	e.num(g.EdgesPerNode)
	e.num(g.Expanded)
	e.num(g.Nodes)
	e.ints(g.Support)
	e.words(g.Packed)
	e.i32s(g.EdgeOff)
	e.i32s(g.Dst)
	e.words(g.Rows)
	// Vecs is nil exactly when Enumerate; keep the distinction.
	e.word(boolWord(g.Vecs != nil))
	e.words(g.Vecs)
	e.i32s(g.Dedup)
	e.i32s(g.DedupOff)
	e.i32s(g.DedupN)

	e.word(boolWord(ht != nil))
	if ht != nil {
		e.num(ht.Runs)
		e.num(ht.Depth)
		e.num(ht.RunsDone)
		e.word(uint64(ht.Seed))
		e.num(ht.NumInputs)
		e.ints(ht.Support)
		e.words(ht.Inputs)
		e.words(ht.Rows)
	}

	buf := make([]byte, 8*len(e.w))
	for i, w := range e.w {
		binary.LittleEndian.PutUint64(buf[8*i:], w)
	}
	return buf
}

func boolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

type graphDecIO struct {
	w   []uint64
	pos int
	err error
}

func (d *graphDecIO) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("fpv: decode graph: "+format, args...)
	}
}

func (d *graphDecIO) word() uint64 {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.w) {
		d.fail("truncated at word %d", d.pos)
		return 0
	}
	v := d.w[d.pos]
	d.pos++
	return v
}

func (d *graphDecIO) num() int { return int(int64(d.word())) }

func (d *graphDecIO) flag() bool { return d.word() != 0 }

// count reads a slice length, bounding it by the words remaining
// (elements consume at least per half-words... per is in words*2 to
// allow the packed int32 arrays' 2-per-word density) so a foreign
// payload cannot trigger an absurd allocation.
func (d *graphDecIO) count(perHalfWords int) int {
	n := d.num()
	if d.err != nil {
		return 0
	}
	if n < 0 || n*perHalfWords > 2*(len(d.w)-d.pos) {
		d.fail("implausible count %d at word %d", n, d.pos-1)
		return 0
	}
	return n
}

func (d *graphDecIO) ints() []int {
	n := d.count(2)
	if n == 0 {
		return nil
	}
	s := make([]int, n)
	for i := range s {
		s[i] = d.num()
	}
	return s
}

func (d *graphDecIO) words() []uint64 {
	n := d.count(2)
	if n == 0 || d.err != nil {
		return nil
	}
	s := make([]uint64, n)
	copy(s, d.w[d.pos:d.pos+n])
	d.pos += n
	return s
}

func (d *graphDecIO) i32s() []int32 {
	n := d.count(1)
	if n == 0 {
		return nil
	}
	s := make([]int32, n)
	for i := 0; i < n; i += 2 {
		w := d.word()
		s[i] = int32(uint32(w))
		if i+1 < n {
			s[i+1] = int32(uint32(w >> 32))
		}
	}
	return s
}

// DecodeGraph rebuilds a Graph (and its optional hunt trace) from an
// EncodeGraph payload. It returns an error on version skew, truncation,
// or structural inconsistency; callers treat any error as a cache miss
// and re-explore.
func DecodeGraph(data []byte) (*Graph, *HuntTrace, error) {
	if len(data)%8 != 0 {
		return nil, nil, fmt.Errorf("fpv: decode graph: payload length %d not word-aligned", len(data))
	}
	w := make([]uint64, len(data)/8)
	for i := range w {
		w[i] = binary.LittleEndian.Uint64(data[8*i:])
	}
	d := &graphDecIO{w: w}
	if v := d.word(); d.err == nil && v != graphioVersion {
		return nil, nil, fmt.Errorf("fpv: decode graph: payload version %d, want %d", v, graphioVersion)
	}
	g := &Graph{}
	g.PackWords = d.num()
	g.NumInputs = d.num()
	g.Enumerate = d.flag()
	g.EdgesPerNode = d.num()
	g.Expanded = d.num()
	g.Nodes = d.num()
	g.Support = d.ints()
	g.Packed = d.words()
	g.EdgeOff = d.i32s()
	g.Dst = d.i32s()
	g.Rows = d.words()
	hasVecs := d.flag()
	g.Vecs = d.words()
	if hasVecs && g.Vecs == nil {
		g.Vecs = []uint64{}
	}
	if !hasVecs && g.Vecs != nil {
		d.fail("vecs present but flagged absent")
	}
	g.Dedup = d.i32s()
	g.DedupOff = d.i32s()
	g.DedupN = d.i32s()

	var ht *HuntTrace
	if d.flag() {
		ht = &HuntTrace{}
		ht.Runs = d.num()
		ht.Depth = d.num()
		ht.RunsDone = d.num()
		ht.Seed = int64(d.word())
		ht.NumInputs = d.num()
		ht.Support = d.ints()
		ht.Inputs = d.words()
		ht.Rows = d.words()
	}
	if d.err != nil {
		return nil, nil, d.err
	}
	if d.pos != len(d.w) {
		return nil, nil, fmt.Errorf("fpv: decode graph: %d trailing words", len(d.w)-d.pos)
	}
	if err := validateGraph(g, ht); err != nil {
		return nil, nil, err
	}
	return g, ht, nil
}

// validateGraph checks the cross-array invariants explorers rely on, so
// a decoded graph from a stale or foreign blob cannot index out of its
// own arrays.
func validateGraph(g *Graph, ht *HuntTrace) error {
	if g.PackWords < 0 || g.Nodes < 0 || g.Expanded < 0 || g.Expanded > g.Nodes {
		return fmt.Errorf("fpv: decode graph: %d expanded of %d nodes, %d pack words", g.Expanded, g.Nodes, g.PackWords)
	}
	if len(g.Packed) != g.Nodes*g.PackWords {
		return fmt.Errorf("fpv: decode graph: %d packed words for %d nodes x %d", len(g.Packed), g.Nodes, g.PackWords)
	}
	if len(g.EdgeOff) != g.Nodes {
		return fmt.Errorf("fpv: decode graph: %d edge offsets for %d nodes", len(g.EdgeOff), g.Nodes)
	}
	edges := len(g.Dst)
	// Rows is one row per representative edge in Dedup order (repRow),
	// not one per edge — duplicate edges share their class's row.
	if len(g.Rows) != len(g.Dedup)*len(g.Support) {
		return fmt.Errorf("fpv: decode graph: %d row words for %d representatives x %d support", len(g.Rows), len(g.Dedup), len(g.Support))
	}
	if g.Vecs != nil && len(g.Vecs) != edges*g.NumInputs {
		return fmt.Errorf("fpv: decode graph: %d vec words for %d edges x %d inputs", len(g.Vecs), edges, g.NumInputs)
	}
	for _, off := range g.EdgeOff {
		if off < -1 || (off >= 0 && int(off)+g.EdgesPerNode > edges) {
			return fmt.Errorf("fpv: decode graph: edge offset %d outside %d edges", off, edges)
		}
	}
	for _, dst := range g.Dst {
		if dst < 0 || int(dst) >= g.Nodes {
			return fmt.Errorf("fpv: decode graph: edge destination %d outside %d nodes", dst, g.Nodes)
		}
	}
	if len(g.DedupOff) != g.Nodes || len(g.DedupN) != g.Nodes {
		return fmt.Errorf("fpv: decode graph: %d dedup offsets, %d counts for %d nodes", len(g.DedupOff), len(g.DedupN), g.Nodes)
	}
	for i := range g.DedupOff {
		// -1 marks an unexpanded node, mirroring EdgeOff.
		if g.DedupOff[i] == -1 && g.DedupN[i] == 0 {
			continue
		}
		if g.DedupN[i] < 0 || g.DedupOff[i] < 0 || int(g.DedupOff[i])+int(g.DedupN[i]) > len(g.Dedup) {
			return fmt.Errorf("fpv: decode graph: dedup span [%d,+%d) outside %d entries", g.DedupOff[i], g.DedupN[i], len(g.Dedup))
		}
	}
	if ht != nil {
		if ht.Runs < 0 || ht.Depth < 0 || ht.RunsDone < 0 || ht.RunsDone > ht.Runs {
			return fmt.Errorf("fpv: decode graph: hunt %d/%d runs, depth %d", ht.RunsDone, ht.Runs, ht.Depth)
		}
		steps := ht.RunsDone * ht.Depth
		if len(ht.Inputs) != steps*ht.NumInputs {
			return fmt.Errorf("fpv: decode graph: %d hunt input words for %d steps x %d inputs", len(ht.Inputs), steps, ht.NumInputs)
		}
		if len(ht.Rows) != steps*len(ht.Support) {
			return fmt.Errorf("fpv: decode graph: %d hunt row words for %d steps x %d support", len(ht.Rows), steps, len(ht.Support))
		}
	}
	return nil
}
