package fpv

import (
	"context"
	"reflect"
	"testing"

	"assertionbench/internal/astore"
	"assertionbench/internal/sva"
)

// populateGraph runs one batch so the cache holds a real exploration,
// then returns the single cached entry.
func populateGraph(t *testing.T, cache *GraphCache, opt Options) (*Graph, *HuntTrace) {
	t.Helper()
	nl := elab(t, counterSrc, "counter")
	var cs []*sva.Compiled
	for _, p := range batchCases[0].props {
		a, err := sva.Parse(p)
		if err != nil {
			t.Fatal(err)
		}
		c, err := sva.Compile(a, nl)
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, c)
	}
	e := NewEngine()
	e.Graphs = cache
	e.VerifyBatch(context.Background(), nl, cs, opt)
	cache.mu.Lock()
	defer cache.mu.Unlock()
	for _, entry := range cache.m { //ab:allow maprange (order-insensitive: the test uses any one entry)
		return entry.g, entry.hunt
	}
	t.Fatal("no graph cached")
	return nil, nil
}

func TestGraphCodecRoundTrip(t *testing.T) {
	for _, mode := range []struct {
		name string
		opt  Options
	}{
		// Exhaustive-friendly budget: enumerate-mode graph, no hunt.
		{"enumerate", Options{Static: StaticOff}},
		// Starved budget: bounded sampled graph plus a hunt trace.
		{"bounded", Options{MaxProductStates: 60, MaxInputBits: 2, MaxInputSamples: 4,
			RandomRuns: 6, RandomDepth: 16, Seed: 3, Static: StaticOff}},
		// Tiny state budget over a tiny input alphabet: the exploration
		// stops with frontier nodes unexpanded (EdgeOff/DedupOff -1) and
		// the six sampled edges collapse to fewer dedup classes, so Rows
		// is shorter than edges*|Support|. Both shapes appear throughout
		// real corpus graphs and a validator that assumes fully-expanded,
		// collapse-free graphs would reject them (it once did, turning
		// half the disk tier into silent rebuild-and-rewrite misses).
		{"starved", Options{MaxProductStates: 3, MaxInputBits: 1, MaxInputSamples: 4,
			RandomRuns: 2, RandomDepth: 4, Seed: 1, Static: StaticOff}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			var cache GraphCache
			g, ht := populateGraph(t, &cache, mode.opt)
			if mode.name == "starved" {
				// The fixture must actually exercise the two shapes.
				if g.Expanded >= g.Nodes {
					t.Fatalf("starved graph fully expanded (%d nodes): fixture lost its unexpanded frontier", g.Nodes)
				}
				if len(g.Dedup) >= len(g.Dst) {
					t.Fatalf("starved graph has no dedup collapse (%d classes / %d edges)", len(g.Dedup), len(g.Dst))
				}
			}
			blob := EncodeGraph(g, ht)
			g2, ht2, err := DecodeGraph(blob)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(g, g2) {
				t.Fatalf("decoded graph differs:\n got %+v\nwant %+v", g2, g)
			}
			if !reflect.DeepEqual(ht, ht2) {
				t.Fatalf("decoded hunt trace differs:\n got %+v\nwant %+v", ht2, ht)
			}
			if string(blob) != string(EncodeGraph(g2, ht2)) {
				t.Fatal("encoding is not deterministic across a decode round-trip")
			}
		})
	}
}

func TestDecodeGraphRejectsGarbage(t *testing.T) {
	var cache GraphCache
	g, ht := populateGraph(t, &cache, Options{Static: StaticOff})
	blob := EncodeGraph(g, ht)
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"misaligned", blob[:len(blob)-5]},
		{"truncated", blob[:8*(len(blob)/16)]},
		{"wrong-version", append([]byte{0xfe, 0, 0, 0, 0, 0, 0, 0}, blob[8:]...)},
		{"trailing", append(append([]byte(nil), blob...), make([]byte, 8)...)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := DecodeGraph(tc.data); err == nil {
				t.Fatal("decode accepted a malformed payload")
			}
		})
	}
}

// TestGraphCacheDiskTier is the cross-process contract: a cache in a
// "second process" (fresh memory cache, fresh netlist pointer from
// re-elaboration) must serve the exploration a first cache wrote to the
// shared directory, with field-identical verdicts.
func TestGraphCacheDiskTier(t *testing.T) {
	store, err := astore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	run := func(cache *GraphCache) []Result {
		nl := elab(t, counterSrc, "counter")
		var cs []*sva.Compiled
		for _, p := range batchCases[0].props {
			a, err := sva.Parse(p)
			if err != nil {
				t.Fatal(err)
			}
			c, err := sva.Compile(a, nl)
			if err != nil {
				t.Fatal(err)
			}
			cs = append(cs, c)
		}
		e := NewEngine()
		e.Graphs = cache
		return e.VerifyBatch(context.Background(), nl, cs, Options{Static: StaticOff})
	}
	cold := &GraphCache{}
	cold.SetDisk(store)
	want := run(cold)
	if store.Hits() != 0 {
		t.Fatalf("cold run hit the empty store %d times", store.Hits())
	}
	warm := &GraphCache{}
	warm.SetDisk(store)
	got := run(warm)
	if store.Hits() == 0 {
		t.Fatal("warm run never read the populated store")
	}
	for i := range want {
		if d := diffResult(got[i], want[i]); d != "" {
			t.Errorf("disk-loaded verdict %d differs: %s", i, d)
		}
	}
	// The loaded entry is adopted into the memory tier.
	if warm.Len() == 0 {
		t.Fatal("disk hit not adopted into the memory cache")
	}
}
