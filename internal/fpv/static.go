package fpv

import (
	"assertionbench/internal/sim"
	"assertionbench/internal/sva"
	"assertionbench/internal/verilog"
	"assertionbench/internal/vstatic"
)

// Static pre-verification: before any state-space search, each property
// is classified against the design's ternary-lattice fixpoint
// (internal/vstatic). A property whose antecedent is statically false
// (or unsatisfiable under the antecedent-refined window walk) is
// vacuous without exploring a single state; one whose every step is
// statically true is proven; one that cannot be violated under the
// refined walk becomes a proof once a concrete trace witnesses a
// completing attempt; one whose consequent is statically refuted
// gets a concrete counter-example from a zero-stimulus replay (the
// abstract claim alone is never reported as CEX — the witness simulation
// must confirm the violation at a concrete cycle, so static CEXs replay
// exactly like searched ones). Anything else falls through to the
// engine untouched. The same analysis exports proven-constant nets to
// cone-of-influence reduction, so cones cut fan-in at constant-driven
// logic. dverify oracle 8 cross-checks static verdicts against full FPV
// with the pass disabled over the fuzz genome.

// coneFor computes the (possibly constant-swept) interned cone for one
// property, applying the worthwhileness gate. Both the per-property and
// batched verification paths use this one helper, so batch partitioning
// matches per-property cone choice exactly (dverify oracle 5).
func coneFor(nl *verilog.Netlist, c *sva.Compiled, opt Options) *verilog.Cone {
	if opt.Cone == ConeOff {
		return nil
	}
	var cone *verilog.Cone
	if opt.Static != StaticOff {
		cone = nl.ConeForSwept(c.SupportNets(), vstatic.For(nl).ConstNets())
	} else {
		cone = nl.ConeFor(c.SupportNets())
	}
	if cone.Identity || !coneWorthwhile(cone, nl, opt) {
		return nil
	}
	return cone
}

// staticResult attempts to discharge the property without search,
// returning (result, true) on success. Static proofs and vacuity carry
// Exhaustive=true: the abstract fixpoint covers every reachable
// environment, so an exhaustive search would necessarily close with the
// same verdict. A static proof is NonVacuous — with every antecedent
// step a tautology, any explored path completes the antecedent.
func staticResult(nl *verilog.Netlist, c *sva.Compiled) (Result, bool) {
	a := vstatic.For(nl)
	switch a.Classify(c) {
	case vstatic.PropVacuous:
		return Result{Status: StatusVacuous, Exhaustive: true, Static: true}, true
	case vstatic.PropProven:
		return Result{Status: StatusProven, NonVacuous: true, Exhaustive: true, Static: true}, true
	case vstatic.PropRefuted:
		return staticWitness(nl, c)
	case vstatic.PropHolds:
		return staticHoldsProof(nl, c)
	}
	return Result{}, false
}

// staticHoldsProof upgrades a "cannot be violated" verdict (vstatic's
// PropHolds: under the assumed antecedent every consequent step is
// statically true, but antecedent satisfiability is open) to a full
// proof by witnessing one completing attempt concretely. Candidate
// traces are deterministic — the zero-stimulus trajectory plus a few
// fixed-seed random-stimulus runs — so the verdict stays a pure
// function of (netlist, property). A completed attempt on a reachable
// trace certifies non-vacuity, the abstract walk certifies no attempt
// can fail, and the combination is an exhaustive proof. Without a
// witness the property falls through to the engine: a vacuous verdict
// must come from a real search, never from the abstract walk alone.
// Defensively, a candidate trace that violates the property (only
// possible if the abstract claim were wrong) also falls through.
func staticHoldsProof(nl *verilog.Netlist, c *sva.Compiled) (Result, bool) {
	proven := Result{Status: StatusProven, NonVacuous: true, Exhaustive: true, Static: true}
	n := c.Window + 16
	s := sim.NewCompiled(nl)
	zeros := make([]uint64, len(nl.Inputs))
	samples := make([][]uint64, 0, n)
	for t := 0; t < n; t++ {
		if err := s.SetInputs(zeros); err != nil {
			return Result{}, false
		}
		s.Settle()
		row := make([]uint64, len(nl.Nets))
		copy(row, s.Env())
		samples = append(samples, row)
		s.Step()
	}
	vs, nonVacuous := CheckTraceCompiled(nl, c, sim.TraceFromSamples(nl, samples), nil)
	if len(vs) > 0 {
		return Result{}, false
	}
	if nonVacuous {
		return proven, true
	}
	// Uniform pseudorandom stimulus (no reset shaping: an arbitrary
	// antecedent is as likely to need an input high as low) from fixed
	// splitmix streams.
	for seed := uint64(1); seed <= 3; seed++ {
		rng := sm64(seed * 0x9E3779B97F4A7C15)
		s := sim.NewCompiled(nl)
		vals := make([]uint64, len(nl.Inputs))
		samples = samples[:0]
		for t := 0; t < 2*n; t++ {
			for k, idx := range nl.Inputs {
				vals[k] = rng.next() & nl.Nets[idx].Mask()
			}
			if err := s.SetInputs(vals); err != nil {
				return Result{}, false
			}
			s.Settle()
			row := make([]uint64, len(nl.Nets))
			copy(row, s.Env())
			samples = append(samples, row)
			s.Step()
		}
		vs, nonVacuous := CheckTraceCompiled(nl, c, sim.TraceFromSamples(nl, samples), nil)
		if len(vs) > 0 {
			return Result{}, false
		}
		if nonVacuous {
			return proven, true
		}
	}
	return Result{}, false
}

// staticWitness drives the zero-stimulus trajectory (the concrete run
// the all-zero input vector induces from power-on) for a statically
// refuted property and checks the trace. If the violation concretizes,
// the trimmed trace becomes a replayable counter-example in exactly the
// searched-CEX format; if the antecedent never fires under zero
// stimulus, the claim stays abstract and the property falls through to
// the engine (which will find the violating stimulus if one is
// reachable).
func staticWitness(nl *verilog.Netlist, c *sva.Compiled) (Result, bool) {
	s := sim.NewCompiled(nl)
	zeros := make([]uint64, len(nl.Inputs))
	n := c.Window + 16
	samples := make([][]uint64, 0, n)
	for t := 0; t < n; t++ {
		if err := s.SetInputs(zeros); err != nil {
			return Result{}, false
		}
		s.Settle()
		row := make([]uint64, len(nl.Nets))
		copy(row, s.Env())
		samples = append(samples, row)
		s.Step()
	}
	vs, _ := CheckTraceCompiled(nl, c, sim.TraceFromSamples(nl, samples), nil)
	if len(vs) == 0 {
		return Result{}, false
	}
	v := vs[0]
	trimmed := samples[:v.ViolationCycle+1]
	_, nonVacuous := CheckTraceCompiled(nl, c, sim.TraceFromSamples(nl, trimmed), nil)
	inputs := make([][]uint64, len(trimmed))
	for i := range inputs {
		inputs[i] = make([]uint64, len(nl.Inputs))
	}
	return Result{
		Status: StatusCEX,
		CEX: &CEX{
			Inputs:         inputs,
			Sampled:        trimmed,
			ViolationCycle: v.ViolationCycle,
			AttemptCycle:   v.AttemptCycle,
		},
		NonVacuous: nonVacuous,
		Depth:      v.ViolationCycle,
		Static:     true,
	}, true
}
