package fpv

import (
	"testing"

	"assertionbench/internal/sim"
	"assertionbench/internal/sva"
)

// The ##[m:n] ranged-delay extension (paper Sec. X, direction iv: richer
// SVA). A handshake node acknowledges a request within a bounded window.

// delayed_ack has no reset input on purpose: a mid-window reset would
// legitimately refute any bounded-response property.
const delayedAckSrc = `
module delayed_ack(clk, req, ack);
input clk, req;
output ack;
reg [1:0] st;
assign ack = st == 2'd2;
always @(posedge clk)
  case (st)
    2'd0: st <= req ? 2'd1 : 2'd0;
    2'd1: st <= 2'd2;
    2'd2: st <= 2'd0;
    default: st <= 0;
  endcase
endmodule
`

func TestRangedDelayParsing(t *testing.T) {
	a, err := sva.Parse("req == 1 |-> ##[1:3] ack == 1")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Ranged() || a.Cons[0].Delay != 1 || a.ConsDelaySpan != 2 {
		t.Fatalf("range wrong: %+v", a)
	}
	if a.WindowLength() != 4 {
		t.Errorf("window = %d, want 4", a.WindowLength())
	}
	if a.String() != "req == 1 |-> ##[1:3] ack == 1" {
		t.Errorf("canonical form = %q", a.String())
	}
	// Round trip.
	b, err := sva.Parse(a.String())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("ranged assertion does not round-trip")
	}
}

func TestRangedDelayErrors(t *testing.T) {
	for _, src := range []string{
		"a ##[1:2] b |-> c",     // range inside antecedent
		"a |-> ##[3:1] b",       // empty range
		"a |-> ##[1:2] b ##1 c", // multi-step consequent
		"##[1:2] a |-> b",       // leading antecedent delay
	} {
		if _, err := sva.Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestRangedDelayVerification(t *testing.T) {
	nl := elab(t, delayedAckSrc, "delayed_ack")
	// From idle, a request reaches ack exactly two cycles later; the
	// ranged window [1:3] covers it, [1:1] does not.
	proven := "st == 0 && req == 1 |-> ##[1:3] ack == 1"
	r := verify(t, nl, proven)
	if r.Status != StatusProven {
		t.Fatalf("%q: %v, want proven", proven, r.Status)
		if r.CEX != nil {
			t.Log(r.CEX.Format(nl))
		}
	}
	tooTight := "st == 0 && req == 1 |-> ##[1:1] ack == 1"
	r = verify(t, nl, tooTight)
	if r.Status != StatusCEX {
		t.Fatalf("%q: %v, want cex", tooTight, r.Status)
	}
	exact := "st == 0 && req == 1 |-> ##[2:2] ack == 1"
	r = verify(t, nl, exact)
	if r.Status != StatusProven {
		t.Fatalf("%q: %v, want proven", exact, r.Status)
	}
}

func TestRangedEquivalentToFixedWhenSpanZero(t *testing.T) {
	nl := elab(t, delayedAckSrc, "delayed_ack")
	fixed := verify(t, nl, "st == 0 && req == 1 |-> ##2 ack == 1")
	ranged := verify(t, nl, "st == 0 && req == 1 |-> ##[2:2] ack == 1")
	if fixed.Status != ranged.Status {
		t.Errorf("##2 (%v) and ##[2:2] (%v) disagree", fixed.Status, ranged.Status)
	}
}

func TestRangedSatisfiedAtAnyOffset(t *testing.T) {
	// On the counter: count == 2 leads to count == 4 within [1:3] cycles
	// only if en stays high; without that constraint a CEX must exist,
	// and the CEX trace must show the consequent failing at EVERY offset
	// of the window.
	nl := elab(t, counterSrc, "counter")
	r := verify(t, nl, "count == 2 && rst == 0 |-> ##[1:3] count == 4")
	if r.Status != StatusCEX {
		t.Fatalf("status %v, want cex", r.Status)
	}
	// Cross-validate the CEX with the trace monitor.
	a, err := sva.Parse("count == 2 && rst == 0 |-> ##[1:3] count == 4")
	if err != nil {
		t.Fatal(err)
	}
	tr := &sim.Trace{Netlist: nl, Cycles: r.CEX.Sampled}
	viol, _, err := CheckTrace(nl, a, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(viol) == 0 {
		t.Fatal("ranged CEX does not violate under the trace monitor")
	}
	// And a run where en is held: proven.
	held := verify(t, nl, "count == 2 && rst == 0 && en == 1 ##1 en == 1 && rst == 0 ##1 en == 1 && rst == 0 |=> count == 5")
	if held.Status != StatusProven {
		t.Fatalf("multi-cycle enable chain: %v, want proven", held.Status)
	}
}

func TestRangedVacuity(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	r := verify(t, nl, "count == 500 |-> ##[1:2] count == 0")
	if r.Status != StatusVacuous {
		t.Fatalf("unreachable ranged antecedent: %v, want vacuous", r.Status)
	}
}
