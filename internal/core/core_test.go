package core

import (
	"strings"
	"testing"

	"assertionbench/internal/bench"
	"assertionbench/internal/fpv"
)

func TestParseModel(t *testing.T) {
	cases := map[string]ModelID{
		"gpt3.5":    GPT35,
		"gpt4o":     GPT4o,
		"codellama": CodeLlama2,
		"llama3":    Llama3,
	}
	for name, want := range cases {
		got, err := ParseModel(name)
		if err != nil || got != want {
			t.Errorf("ParseModel(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseModel("claude"); err == nil {
		t.Error("unknown model must fail")
	}
}

func TestModelProfiles(t *testing.T) {
	for _, id := range []ModelID{GPT35, GPT4o, CodeLlama2, Llama3} {
		p, err := id.Profile()
		if err != nil {
			t.Fatal(err)
		}
		if p.Name == "" || p.Temperature != 1.0 || p.TopP != 0.95 || p.MaxTokens != 1024 {
			t.Errorf("profile %v does not match the paper's Sec. IV hyperparameters: %+v", id, p)
		}
	}
	if _, err := ModelID(99).Profile(); err == nil {
		t.Error("invalid model id must fail")
	}
}

func TestEndToEndFacade(t *testing.T) {
	b, err := LoadBenchmark(Options{MaxDesigns: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Train()) != 5 || len(b.Corpus()) != 5 || len(b.Examples()) != 5 {
		t.Fatalf("benchmark shape: %d train, %d corpus, %d examples",
			len(b.Train()), len(b.Corpus()), len(b.Examples()))
	}

	gen, err := Generate(GPT4o, bench.TrainArbiter, b, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(gen.Assertions) == 0 || len(gen.Corrected) != len(gen.Assertions) {
		t.Fatalf("generation shape: %d raw, %d corrected", len(gen.Assertions), len(gen.Corrected))
	}

	results, err := Verify(bench.TrainArbiter, gen.Corrected)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(gen.Corrected) {
		t.Fatalf("%d results for %d assertions", len(results), len(gen.Corrected))
	}

	mined, err := Mine(bench.TrainArbiter)
	if err != nil {
		t.Fatal(err)
	}
	if len(mined) == 0 {
		t.Fatal("mining the arbiter found nothing")
	}
	seen := map[string]bool{}
	for _, m := range mined {
		s := m.Assertion.String()
		if seen[s] {
			t.Errorf("Mine returned duplicate %q", s)
		}
		seen[s] = true
		if !m.Result.Status.IsPass() {
			t.Errorf("Mine returned unproven %q", s)
		}
	}
}

func TestVerifyRejectsBadDesign(t *testing.T) {
	if _, err := Verify("not verilog at all", []string{"a |-> b"}); err == nil {
		t.Fatal("unparseable design must fail")
	}
}

func TestEvaluateCOTSSmall(t *testing.T) {
	b, err := LoadBenchmark(Options{MaxDesigns: 4})
	if err != nil {
		t.Fatal(err)
	}
	runs, err := EvaluateCOTS(b, GPT35)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0].Shots != 1 || runs[1].Shots != 5 {
		t.Fatalf("EvaluateCOTS shape wrong: %+v", runs)
	}
	for _, r := range runs {
		if r.Metrics.Total() == 0 {
			t.Error("empty metrics")
		}
	}
}

func TestBuildAndEvaluateAssertionLLM(t *testing.T) {
	b, err := LoadBenchmark(Options{MaxDesigns: 8})
	if err != nil {
		t.Fatal(err)
	}
	tuned, report, err := BuildAssertionLLM(b, CodeLlama2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(tuned.Profile.Name, "AssertionLLM") {
		t.Errorf("tuned model named %q", tuned.Profile.Name)
	}
	if report.PerplexityAfter >= report.PerplexityBefore {
		t.Errorf("perplexity did not drop: %.1f -> %.1f", report.PerplexityBefore, report.PerplexityAfter)
	}
	runs, err := EvaluateFinetuned(b, CodeLlama2)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("got %d finetuned runs", len(runs))
	}
	for _, r := range runs {
		if !strings.HasPrefix(r.Model, "AssertionLLM") {
			t.Errorf("run model = %q", r.Model)
		}
	}
}

func TestGenerateVerifyAgreesWithDirectFPV(t *testing.T) {
	// The facade's Verify must agree with the engine called directly.
	results, err := Verify(bench.TrainArbiter, []string{
		"rst == 1 |=> gnt_ == 0",
		"req2 == 0 |-> gnt2 == 0",
		"bogus == 1 |-> gnt1 == 1",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []fpv.Status{fpv.StatusProven, fpv.StatusProven, fpv.StatusError}
	for i, w := range want {
		if results[i].Status != w {
			t.Errorf("result %d = %v, want %v", i, results[i].Status, w)
		}
	}
}
