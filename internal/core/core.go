// Package core is the public facade of the AssertionBench/AssertionLLM
// reproduction. It wires the substrates together behind a small API:
//
//	b, _ := core.LoadBenchmark(core.Options{})        // designs + ICL examples
//	gen, _ := core.Generate(core.GPT4o, design, b, 5) // k-shot generation
//	res, _ := core.Verify(design, gen.Assertions)     // FPV verdicts
//	runs, _ := core.EvaluateCOTS(b, core.GPT4o)       // Fig. 6 column
//	tuned, _ := core.BuildAssertionLLM(b, core.CodeLlama2)
//
// Everything underneath (Verilog front end, simulator, FPV engine, miners,
// simulated LLMs) is exposed through the internal packages for advanced
// use; this package covers the paper's experiment surface.
package core

import (
	"fmt"

	"assertionbench/internal/bench"
	"assertionbench/internal/corrector"
	"assertionbench/internal/eval"
	"assertionbench/internal/fpv"
	"assertionbench/internal/llm"
	"assertionbench/internal/mine"
	"assertionbench/internal/sva"
	"assertionbench/internal/verilog"
)

// ModelID selects one of the paper's models.
type ModelID int

// Model identifiers.
const (
	GPT35 ModelID = iota
	GPT4o
	CodeLlama2
	Llama3
)

// Profile returns the calibrated profile for a model id.
func (id ModelID) Profile() (llm.Profile, error) {
	switch id {
	case GPT35:
		return llm.GPT35(), nil
	case GPT4o:
		return llm.GPT4o(), nil
	case CodeLlama2:
		return llm.CodeLlama2(), nil
	case Llama3:
		return llm.Llama3(), nil
	}
	return llm.Profile{}, fmt.Errorf("core: unknown model id %d", int(id))
}

// ParseModel resolves a model name used by the CLIs.
func ParseModel(name string) (ModelID, error) {
	switch name {
	case "gpt3.5", "gpt-3.5", "GPT-3.5":
		return GPT35, nil
	case "gpt4o", "gpt-4o", "GPT-4o":
		return GPT4o, nil
	case "codellama", "codellama2", "CodeLLaMa 2":
		return CodeLlama2, nil
	case "llama3", "llama3-70b", "LLaMa3-70B":
		return Llama3, nil
	}
	return 0, fmt.Errorf("core: unknown model %q (want gpt3.5|gpt4o|codellama|llama3)", name)
}

// Options configure benchmark loading.
type Options struct {
	// Seed drives mining and evaluation determinism. Default 1.
	Seed int64
	// MaxDesigns truncates the 100-design test corpus (0 = all).
	MaxDesigns int
	// Workers sets the evaluation worker-pool size (0 = GOMAXPROCS,
	// 1 = sequential). Results are identical at any worker count.
	Workers int
}

// Benchmark bundles AssertionBench: training designs with proven
// assertions (ICL examples) and the test corpus.
type Benchmark struct {
	Experiment *eval.Experiment
}

// LoadBenchmark builds AssertionBench: the five train designs are mined
// with GOLDMINE and HARM and their assertions formally verified.
func LoadBenchmark(opt Options) (*Benchmark, error) {
	e, err := eval.NewExperiment(eval.ExperimentOptions{
		Seed:       opt.Seed,
		MaxDesigns: opt.MaxDesigns,
		Workers:    opt.Workers,
	})
	if err != nil {
		return nil, err
	}
	return &Benchmark{Experiment: e}, nil
}

// Train returns the five ICL training designs.
func (b *Benchmark) Train() []bench.Design { return b.Experiment.Train }

// Corpus returns the test designs.
func (b *Benchmark) Corpus() []bench.Design { return b.Experiment.Corpus }

// Examples returns the mined in-context examples.
func (b *Benchmark) Examples() []llm.Example { return b.Experiment.ICL }

// GenResult is the outcome of one generation call.
type GenResult struct {
	// Raw is the model's raw text output.
	Raw string
	// Assertions are the candidate lines (post-split, pre-correction).
	Assertions []string
	// Corrected are the candidates after the syntax corrector.
	Corrected []string
}

// Generate runs k-shot assertion generation for a design source using the
// given COTS model, including the Fig. 4 syntax-corrector stage.
func Generate(id ModelID, designSource string, b *Benchmark, shots int, seed int64) (GenResult, error) {
	p, err := id.Profile()
	if err != nil {
		return GenResult{}, err
	}
	model := llm.New(p)
	prompt := llm.BuildPrompt(b.Examples()[:shots], designSource, p.ContextWindow)
	gen := model.Generate(prompt, llm.GenOptions{Shots: shots, Seed: seed})
	lines := sva.SplitAssertions(gen.Text)
	out := GenResult{Raw: gen.Text, Assertions: lines}
	if nl, err := verilog.ElaborateSource(designSource, ""); err == nil {
		out.Corrected, _ = corrector.New(nl).CorrectAll(lines)
	} else {
		out.Corrected = lines
	}
	return out, nil
}

// Verify formally verifies assertion texts against a design.
func Verify(designSource string, assertions []string) ([]fpv.Result, error) {
	nl, err := verilog.ElaborateSource(designSource, "")
	if err != nil {
		return nil, err
	}
	return fpv.VerifyAll(nl, assertions, fpv.Options{}), nil
}

// Mine runs both miners on a design and returns ranked proven assertions.
func Mine(designSource string) ([]mine.Mined, error) {
	nl, err := verilog.ElaborateSource(designSource, "")
	if err != nil {
		return nil, err
	}
	gm, err := mine.GoldMine(nl, mine.Options{})
	if err != nil {
		return nil, err
	}
	hm, err := mine.Harm(nl, mine.Options{})
	if err != nil {
		return nil, err
	}
	merged := append(gm, hm...)
	mine.Rank(merged)
	seen := map[string]bool{}
	out := merged[:0]
	for _, m := range merged {
		key := m.Assertion.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, m)
	}
	return out, nil
}

// EvaluateCOTS runs the Fig. 4 pipeline for one model at 1- and 5-shot.
func EvaluateCOTS(b *Benchmark, id ModelID) ([]eval.RunResult, error) {
	p, err := id.Profile()
	if err != nil {
		return nil, err
	}
	var out []eval.RunResult
	for _, k := range []int{1, 5} {
		r, err := b.Experiment.RunCOTS(p, k)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// BuildAssertionLLM fine-tunes the base model on 75% of AssertionBench
// (paper Sec. VI) and returns the tuned model plus its training report.
func BuildAssertionLLM(b *Benchmark, id ModelID) (*llm.Model, llm.FinetuneReport, error) {
	p, err := id.Profile()
	if err != nil {
		return nil, llm.FinetuneReport{}, err
	}
	corpus, _, err := b.Experiment.FinetuneSplit()
	if err != nil {
		return nil, llm.FinetuneReport{}, err
	}
	tuned, report := llm.Finetune(llm.New(p), corpus, llm.FinetuneOptions{Seed: b.Experiment.Opt.Seed})
	return tuned, report, nil
}

// EvaluateFinetuned runs the Fig. 8 pipeline (no corrector) for the
// fine-tuned variant of a base model at 1- and 5-shot on the held-out 25%.
func EvaluateFinetuned(b *Benchmark, id ModelID) ([]eval.RunResult, error) {
	p, err := id.Profile()
	if err != nil {
		return nil, err
	}
	var out []eval.RunResult
	for _, k := range []int{1, 5} {
		r, _, err := b.Experiment.FinetunedRun(p, k)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
