package faults

import (
	"errors"
	"fmt"
	"io/fs"
	"testing"
)

func TestTransientClassification(t *testing.T) {
	if Transient(nil) != nil {
		t.Error("Transient(nil) != nil")
	}
	base := errors.New("disk hiccup")
	tr := Transient(base)
	if !IsTransient(tr) {
		t.Error("Transient(err) not classified transient")
	}
	if !errors.Is(tr, base) {
		t.Error("Transient broke the error chain")
	}
	if tr.Error() != base.Error() {
		t.Errorf("Transient changed the message: %q", tr.Error())
	}
	if IsTransient(base) {
		t.Error("unclassified error reported transient")
	}
	if IsTransient(nil) {
		t.Error("nil reported transient")
	}
}

func TestTransientSurvivesWrapping(t *testing.T) {
	inner := Transientf("blob %s: %w", "abc", fs.ErrNotExist)
	wrapped := fmt.Errorf("eval: design d0: %w", inner)
	if !IsTransient(wrapped) {
		t.Error("transient class lost through fmt.Errorf %w wrapping")
	}
	if !errors.Is(wrapped, fs.ErrNotExist) {
		t.Error("Transientf %w did not chain the wrapped error")
	}
	rewrapped := fmt.Errorf("outer: %w", fmt.Errorf("mid: %w", wrapped))
	if !IsTransient(rewrapped) {
		t.Error("transient class lost through two wrapping layers")
	}
}
