// Package faults is the error taxonomy of the fault-tolerance layer.
// It classifies failures into two retry classes: transient (worth
// retrying — artifact-store I/O hiccups, injected faults from
// internal/faultinject) and permanent (a malformed design, a panicking
// generator — where retrying cannot change the answer). The class
// travels inside the error chain, so any layer may wrap with %w and
// the eval runner's retry loop still sees it through errors.As.
package faults

import (
	"errors"
	"fmt"
)

// transient marks an error chain as retryable.
type transient struct{ err error }

func (t *transient) Error() string { return t.err.Error() }
func (t *transient) Unwrap() error { return t.err }

// Transient wraps err as a transient (retryable) failure. A nil err
// stays nil, so call sites can wrap unconditionally.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transient{err: err}
}

// Transientf builds a new transient failure fmt.Errorf-style (the
// format verbs support %w like fmt.Errorf).
func Transientf(format string, args ...any) error {
	return &transient{err: fmt.Errorf(format, args...)}
}

// IsTransient reports whether any error in the chain was marked
// Transient. Everything else — including a bare error that was never
// classified — is treated as permanent by callers, which keeps "retry"
// an explicit opt-in per failure site rather than a default.
func IsTransient(err error) bool {
	var t *transient
	return errors.As(err, &t)
}
