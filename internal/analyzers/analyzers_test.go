package analyzers

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runSuite(t *testing.T, src string) []Finding {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "fixture.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// A test file in the same directory must be invisible to the suite.
	testSrc := "package fixture\n\nimport \"math/rand\"\n\nvar _ = rand.Int\n"
	if err := os.WriteFile(filepath.Join(dir, "fixture_test.go"), []byte(testSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := CheckDirs([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func byAnalyzer(fs []Finding) map[string]int {
	out := map[string]int{}
	for _, f := range fs {
		out[f.Analyzer]++
	}
	return out
}

func TestSuiteFlagsEachRule(t *testing.T) {
	findings := runSuite(t, `package fixture

import (
	"math/rand"
	"time"
)

func bad() int64 {
	m := map[string]int{"a": 1}
	s := 0
	for _, v := range m {
		s += v
	}
	return time.Now().UnixNano() + int64(rand.Int()) + int64(s)
}
`)
	got := byAnalyzer(findings)
	for _, want := range []string{"norand", "notime", "maprange"} {
		if got[want] != 1 {
			t.Errorf("rule %s: %d findings, want 1 (all: %v)", want, got[want], findings)
		}
	}
}

func TestAllowDirectiveSuppresses(t *testing.T) {
	findings := runSuite(t, `package fixture

func fold(m map[int]int) int {
	s := 0
	//ab:allow maprange
	for _, v := range m {
		s += v
	}
	for _, v := range m { //ab:allow maprange
		s += v
	}
	return s
}
`)
	if len(findings) != 0 {
		t.Fatalf("allowed sites still reported: %v", findings)
	}
}

func TestAllowIsPerRule(t *testing.T) {
	findings := runSuite(t, `package fixture

import "math/rand"

func bad(m map[int]int) int {
	//ab:allow norand
	for range m {
	}
	return rand.Int()
}
`)
	got := byAnalyzer(findings)
	if got["maprange"] != 1 {
		t.Errorf("an allow for norand must not silence maprange: %v", findings)
	}
	if got["norand"] != 1 {
		t.Errorf("the import site itself carries no allow and must be reported: %v", findings)
	}
}

func TestUnresolvableTypesAreNotFlagged(t *testing.T) {
	findings := runSuite(t, `package fixture

import "example.invalid/nowhere"

func unknown() {
	for range nowhere.Mystery {
	}
}
`)
	if got := byAnalyzer(findings); got["maprange"] != 0 {
		t.Fatalf("expression of unknown type was flagged: %v", findings)
	}
}

func TestShadowedTimeIsNotFlagged(t *testing.T) {
	findings := runSuite(t, `package fixture

type clock struct{}

func (clock) Now() int { return 0 }

func ok() int {
	var time clock
	return time.Now()
}
`)
	if len(findings) != 0 {
		t.Fatalf("shadowed time identifier was flagged: %v", findings)
	}
}

func TestRepositoryPackagesStayClean(t *testing.T) {
	dirs := []string{"../fpv", "../verilog", "../sva"}
	findings, err := CheckDirs(dirs)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, f := range findings {
		sb.WriteString("\n  " + f.String())
	}
	if len(findings) != 0 {
		t.Fatalf("determinism-critical packages have vet findings:%s", sb.String())
	}
}
