// Package analyzers is the project vet suite: small AST analyzers that
// enforce determinism invariants the standard toolchain cannot see.
// The FPV engine, the netlist layer and the SVA monitor must be pure
// functions of their inputs — a run is reproducible from (design,
// property, seed) alone — so their production code must not draw from
// ambient entropy (math/rand), wall-clock time (time.Now), or Go's
// randomized map iteration order when that order can reach an output.
//
// The suite is built on the standard library only (go/ast, go/parser,
// go/token, go/types): no golang.org/x/tools dependency, so it runs in
// sealed build environments. Sanctioned exceptions are annotated in
// place with a `//ab:allow <analyzer>` comment on the offending line or
// the line directly above it; the annotation names the analyzer it
// silences, so an allow for one rule cannot mask another.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Analyzer is one vet rule over a type-checked package.
type Analyzer struct {
	// Name is the identifier used in findings and //ab:allow directives.
	Name string
	// Doc states the invariant the rule protects.
	Doc string
	// Run inspects the pass and reports violations.
	Run func(*Pass)
}

// Pass is one package's worth of parsed, leniently type-checked files
// handed to each analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	// Info holds whatever the lenient type-check could resolve. Types of
	// expressions involving unresolved cross-package imports are absent;
	// analyzers must treat a missing type as "unknown", never as a
	// violation.
	Info *types.Info

	analyzer string
	allow    map[string]map[int]map[string]bool // file -> line -> names
	findings *[]Finding
}

// Report files a finding unless an //ab:allow directive for the current
// analyzer covers the position (same line or the line directly above).
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	lines := p.allow[position.Filename]
	for _, l := range []int{position.Line, position.Line - 1} {
		if lines[l][p.analyzer] || lines[l]["all"] {
			return
		}
	}
	*p.findings = append(*p.findings, Finding{
		Pos:      position,
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All is the suite, in reporting order.
var All = []*Analyzer{NoRand, NoTime, MapRange}

// CheckDirs runs the whole suite over every non-test .go file in each
// directory (one directory = one package) and returns the combined
// findings sorted by position. The error covers I/O and parse failures
// only; findings are data.
func CheckDirs(dirs []string) ([]Finding, error) {
	var findings []Finding
	for _, dir := range dirs {
		fs, err := checkDir(dir)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}

func checkDir(dir string) ([]Finding, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, path := range paths {
		// Test files may use seeded math/rand freely; the determinism
		// contract is about production code.
		if strings.HasSuffix(path, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analyzers: no non-test Go files in %s", dir)
	}

	// Lenient type-check: cross-package imports resolve to empty stub
	// packages, so only locally decidable types land in Info. That is
	// exactly the right failure mode for a vet rule — an expression whose
	// type cannot be established is not reported.
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{
		Error:                    func(error) {},
		Importer:                 stubImporter{},
		DisableUnusedImportCheck: true,
	}
	conf.Check(dir, fset, files, info) // errors intentionally ignored

	var findings []Finding
	pass := &Pass{
		Fset:     fset,
		Files:    files,
		Info:     info,
		allow:    collectAllows(fset, files),
		findings: &findings,
	}
	for _, a := range All {
		pass.analyzer = a.Name
		a.Run(pass)
	}
	return findings, nil
}

// collectAllows indexes every //ab:allow directive by file and line.
func collectAllows(fset *token.FileSet, files []*ast.File) map[string]map[int]map[string]bool {
	out := make(map[string]map[int]map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "ab:allow") {
					continue
				}
				names := strings.Fields(strings.TrimPrefix(text, "ab:allow"))
				pos := fset.Position(c.Pos())
				lines := out[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					out[pos.Filename] = lines
				}
				set := lines[pos.Line]
				if set == nil {
					set = make(map[string]bool)
					lines[pos.Line] = set
				}
				for _, n := range names {
					set[n] = true
				}
			}
		}
	}
	return out
}

// stubImporter satisfies every import with an empty, complete package.
// Identifiers drawn from such a package type-check as invalid, which
// analyzers treat as unknown.
type stubImporter struct{}

func (stubImporter) Import(path string) (*types.Package, error) {
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	pkg := types.NewPackage(path, name)
	pkg.MarkComplete()
	return pkg, nil
}

// NoRand forbids math/rand in production code: any randomness in the
// verification core would make verdicts irreproducible from (design,
// property, seed).
var NoRand = &Analyzer{
	Name: "norand",
	Doc:  "production code must not import math/rand; verdicts are pure functions of (design, property, seed)",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if path == "math/rand" || path == "math/rand/v2" {
					p.Report(imp.Pos(), "import of %s: the verification core must not draw ambient randomness", path)
				}
			}
		}
	},
}

// NoTime forbids time.Now in production code: wall-clock reads make
// runs irreproducible and leak into verdict-adjacent state.
var NoTime = &Analyzer{
	Name: "notime",
	Doc:  "production code must not call time.Now; wall-clock reads break run reproducibility",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Now" {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok || id.Name != "time" {
					return true
				}
				// Respect shadowing when the type-checker resolved the
				// identifier: only a package name is the time package.
				if obj, resolved := p.Info.Uses[id]; resolved {
					if _, isPkg := obj.(*types.PkgName); !isPkg {
						return true
					}
				}
				p.Report(sel.Pos(), "call of time.Now: wall-clock reads are forbidden in the verification core")
				return true
			})
		}
	},
}

// MapRange forbids iterating a map directly: Go randomizes map order,
// so any map iteration whose effects can reach an output is a
// nondeterminism hazard. Sanctioned sites (key collection immediately
// followed by a sort, order-insensitive folds) carry //ab:allow
// maprange annotations.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "production code must not range over a map; iteration order is randomized",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, known := p.Info.Types[rs.X]
				if !known || tv.Type == nil {
					return true
				}
				if m, isMap := tv.Type.Underlying().(*types.Map); isMap {
					p.Report(rs.Pos(), "range over map %s: iteration order is randomized; collect and sort the keys, or annotate an order-insensitive site with //ab:allow maprange", types.TypeString(m, nil))
				}
				return true
			})
		}
	},
}
