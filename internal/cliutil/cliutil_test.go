package cliutil

import (
	"bytes"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// captureFatal runs f with the exit seam and logger redirected,
// returning the exit status and stderr line.
func captureFatal(t *testing.T, f func()) (status int, msg string) {
	t.Helper()
	origExit := exit
	origOut := log.Writer()
	origFlags := log.Flags()
	origPrefix := log.Prefix()
	defer func() {
		exit = origExit
		log.SetOutput(origOut)
		log.SetFlags(origFlags)
		log.SetPrefix(origPrefix)
	}()
	var buf bytes.Buffer
	log.SetOutput(&buf)
	log.SetFlags(0)
	log.SetPrefix("tool: ")
	status = -1
	exit = func(code int) {
		status = code
		panic("exit")
	}
	func() {
		defer func() { recover() }()
		f()
	}()
	return status, buf.String()
}

func TestFatalConvention(t *testing.T) {
	status, msg := captureFatal(t, func() { Fatal("boom") })
	if status != 2 {
		t.Errorf("Fatal exit = %d, want 2", status)
	}
	if msg != "tool: boom\n" {
		t.Errorf("Fatal stderr = %q", msg)
	}
	status, msg = captureFatal(t, func() { Fatalf("bad %s", "flag") })
	if status != 2 || msg != "tool: bad flag\n" {
		t.Errorf("Fatalf = (%d, %q)", status, msg)
	}
	status, msg = captureFatal(t, func() { ReadFile(filepath.Join(t.TempDir(), "absent.v")) })
	if status != 2 || !strings.Contains(msg, "absent.v") {
		t.Errorf("ReadFile = (%d, %q)", status, msg)
	}
	status, msg = captureFatal(t, func() { Assertions("", nil) })
	if status != 2 || !strings.Contains(msg, "no assertions") {
		t.Errorf("empty Assertions = (%d, %q)", status, msg)
	}
}

func TestAssertionsGathering(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "a.sva")
	if err := os.WriteFile(file, []byte("a |-> b\nc |=> d\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got := Assertions(file, []string{"x == 1"})
	if len(got) != 3 || got[0] != "x == 1" {
		t.Fatalf("Assertions = %q", got)
	}
}

// TestCLIErrorPaths is the table-driven harness over the real binaries:
// every CLI must exit 2 with a single "tool: ..." stderr line and an
// empty stdout for usage, missing-file and bad-flag-value failures.
func TestCLIErrorPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI binaries")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not available")
	}
	binDir := t.TempDir()
	tools := []string{"fpv", "ablint", "acov", "mine", "assertgen", "abench", "figures", "finetune", "fuzzcheck"}
	for _, tool := range tools {
		cmd := exec.Command(goTool, "build", "-o", filepath.Join(binDir, tool), "assertionbench/cmd/"+tool)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}
	missing := filepath.Join(binDir, "no-such-design.v")
	badDesign := filepath.Join(binDir, "bad.v")
	if err := os.WriteFile(badDesign, []byte("module m(; endmodule"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		tool string
		args []string
	}{
		{"fpv-no-args", "fpv", nil},
		{"fpv-missing-design", "fpv", []string{missing, "a |-> b"}},
		{"fpv-missing-assertion-file", "fpv", []string{"-f", missing, badDesign}},
		{"fpv-no-assertions", "fpv", []string{badDesign}},
		{"fpv-bad-design", "fpv", []string{badDesign, "a |-> b"}},
		{"ablint-no-args", "ablint", nil},
		{"ablint-missing-design", "ablint", []string{missing, "a |-> b"}},
		{"ablint-missing-assertion-file", "ablint", []string{"-f", missing, badDesign}},
		{"ablint-no-assertions", "ablint", []string{badDesign}},
		{"ablint-bad-design", "ablint", []string{badDesign, "a |-> b"}},
		{"acov-no-args", "acov", nil},
		{"acov-missing-design", "acov", []string{missing, "a |-> b"}},
		{"acov-no-assertions", "acov", []string{badDesign}},
		{"acov-bad-design", "acov", []string{badDesign, "a |-> b"}},
		{"mine-no-args", "mine", nil},
		{"mine-missing-design", "mine", []string{missing}},
		{"mine-bad-design", "mine", []string{badDesign}},
		{"assertgen-no-args", "assertgen", nil},
		{"assertgen-missing-design", "assertgen", []string{missing}},
		{"assertgen-bad-model", "assertgen", []string{"-model", "nonesuch", badDesign}},
		{"abench-bad-shard", "abench", []string{"-shard", "bogus"}},
		{"abench-bad-model", "abench", []string{"-model", "nonesuch", "-designs", "1"}},
		{"abench-bad-dispatch", "abench", []string{"-dispatch", "lifo", "-model", "gpt3.5", "-designs", "1"}},
		{"abench-negative-deadline", "abench", []string{"-deadline", "-1s", "-model", "gpt3.5", "-designs", "1"}},
		{"abench-bad-error-policy", "abench", []string{"-error-policy", "sometimes", "-model", "gpt3.5", "-designs", "1"}},
		{"abench-negative-retries", "abench", []string{"-retries", "-1", "-model", "gpt3.5", "-designs", "1"}},
		{"abench-resume-without-store", "abench", []string{"-resume", "-model", "gpt3.5", "-designs", "1"}},
		{"abench-bad-inject", "abench", []string{"-inject", "explode:1", "-model", "gpt3.5", "-designs", "1"}},
		{"fpv-resume-without-store", "fpv", []string{"-resume", badDesign, "a |-> b"}},
		{"figures-bad-only", "figures", []string{"-only", "bogus"}},
		{"finetune-unknown-base", "finetune", []string{"-base", "nonesuch"}},
		{"finetune-non-llama-base", "finetune", []string{"-base", "gpt4o"}},
		{"fuzzcheck-bad-n", "fuzzcheck", []string{"-n", "0"}},
		{"fuzzcheck-bad-props", "fuzzcheck", []string{"-props", "-1"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			cmd := exec.Command(filepath.Join(binDir, tc.tool), tc.args...)
			cmd.Stdout = &stdout
			cmd.Stderr = &stderr
			err := cmd.Run()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("want a non-zero exit, got %v (stderr %q)", err, stderr.String())
			}
			if code := ee.ExitCode(); code != 2 {
				t.Errorf("exit status = %d, want 2 (stderr %q)", code, stderr.String())
			}
			if stdout.Len() != 0 {
				t.Errorf("partial output on stdout: %q", stdout.String())
			}
			if !strings.HasPrefix(stderr.String(), tc.tool+": ") {
				t.Errorf("stderr = %q, want prefix %q", stderr.String(), tc.tool+": ")
			}
		})
	}
}

// TestContinuePolicyExitsOneWithFullOutput: an errored sweep under
// -error-policy continue is the one non-zero exit that still prints
// everything — the full stream and metrics on stdout, the errored tally
// on stderr, exit status 1. Distinct from usage failures (exit 2, empty
// stdout) so scripts can tell a partially failed run from a misuse.
func TestContinuePolicyExitsOneWithFullOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the abench binary")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not available")
	}
	binDir := t.TempDir()
	bin := filepath.Join(binDir, "abench")
	if out, err := exec.Command(goTool, "build", "-o", bin, "assertionbench/cmd/abench").CombinedOutput(); err != nil {
		t.Fatalf("build abench: %v\n%s", err, out)
	}
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, "-model", "gpt3.5", "-designs", "2", "-stream",
		"-inject", "panic:0", "-error-policy", "continue")
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err = cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want exit 1, got %v (stderr %q)", err, stderr.String())
	}
	if code := ee.ExitCode(); code != 1 {
		t.Errorf("exit status = %d, want 1 (stderr %q)", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "[errored:") {
		t.Errorf("stdout lacks the errored outcome mark:\n%s", out)
	}
	// Both designs stream for both shot counts, then the per-run metric
	// lines — the failure must not cost any output.
	for _, want := range []string{"#000", "#001", "1-shot:", "5-shot:"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout lacks %q — output was cut short:\n%s", want, out)
		}
	}
	if !strings.Contains(stderr.String(), "errored") {
		t.Errorf("stderr = %q, want the errored tally", stderr.String())
	}
}
