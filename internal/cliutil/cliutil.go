// Package cliutil centralizes the error-path conventions the
// repository's CLIs share. Every tool follows the same contract:
//
//   - Usage, flag-validation, input-reading and design errors print one
//     "tool: message" line to stderr (through the standard logger, whose
//     prefix each main sets) and exit with status 2, before anything is
//     written to stdout.
//   - Verification findings — counter-examples, lint flags — exit 1.
//   - Success exits 0.
//
// Before this package each CLI hand-rolled the first bullet and they
// had drifted: ablint exited 2 where fpv/acov/mine/assertgen exited 1
// via log.Fatal, so scripts could not tell "you invoked me wrong" from
// "the design has a bug". The table-driven harness in cliutil_test.go
// pins the contract for every tool at once.
package cliutil

import (
	"log"
	"os"

	"assertionbench"
)

// exit is a seam so unit tests can observe the status without dying.
var exit = os.Exit

// Fatal prints its arguments through the standard logger (one line on
// stderr with the tool's prefix) and exits 2 — the shared convention
// for usage, environment and design errors.
func Fatal(v ...any) {
	log.Print(v...)
	exit(2)
}

// Fatalf is Fatal with formatting.
func Fatalf(format string, args ...any) {
	log.Printf(format, args...)
	exit(2)
}

// Usage prints the tool's usage line and exits 2. It exists so grep
// finds every usage exit through one name.
func Usage(line string) {
	Fatal(line)
}

// ReadFile is os.ReadFile under the shared failure convention.
func ReadFile(path string) []byte {
	data, err := os.ReadFile(path)
	if err != nil {
		Fatal(err)
	}
	return data
}

// Assertions gathers assertion texts the way every assertion-consuming
// CLI does: positional arguments after the design file, plus the
// optional -f file split into candidate lines. An empty result is a
// usage error.
func Assertions(file string, args []string) []string {
	assertions := append([]string(nil), args...)
	if file != "" {
		assertions = append(assertions, assertionbench.SplitAssertions(string(ReadFile(file)))...)
	}
	if len(assertions) == 0 {
		Fatal("no assertions given")
	}
	return assertions
}
