package astore

import (
	"bytes"
	"encoding/binary"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"assertionbench/internal/faults"
)

func blobPath(t *testing.T, s *Store, kind, key string) string {
	t.Helper()
	p := s.path(kind, key)
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("blob for %q not on disk: %v", key, err)
	}
	return p
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("the quick brown fox\x00jumps")
	if err := s.Put(KindProgram, "design-a", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(KindProgram, "design-a")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want payload back", got, ok)
	}
	// Same key under a different kind is a distinct blob.
	if _, ok := s.Get(KindGraph, "design-a"); ok {
		t.Fatal("kind is not part of the address")
	}
	if s.Hits() != 1 || s.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", s.Hits(), s.Misses())
	}
	// Overwrite replaces.
	if err := s.Put(KindProgram, "design-a", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, ok = s.Get(KindProgram, "design-a")
	if !ok || string(got) != "v2" {
		t.Fatalf("after overwrite Get = %q, %v", got, ok)
	}
}

func TestCrossProcessPersistence(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(KindGraph, "k", []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	// A second handle on the same directory — a fresh process — sees it.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(KindGraph, "k")
	if !ok || string(got) != "persisted" {
		t.Fatalf("fresh handle Get = %q, %v", got, ok)
	}
	if s2.total <= 0 {
		t.Fatal("Open did not account existing blobs")
	}
}

// corrupt applies f to the stored blob bytes and writes them back.
func corrupt(t *testing.T, path string, f func([]byte) []byte) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, f(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

// Every corruption class must read as a miss, delete the bad blob, and
// let an identical rebuild repopulate the slot.
func TestCorruptBlobsAreDiscardedAndRebuilt(t *testing.T) {
	payload := []byte("canonical artifact bytes 0123456789")
	cases := []struct {
		name string
		f    func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"empty", func(b []byte) []byte { return nil }},
		{"bit-flipped-payload", func(b []byte) []byte {
			b[headerSize+3] ^= 0x40
			return b
		}},
		{"bit-flipped-checksum", func(b []byte) []byte {
			b[len(b)-1] ^= 0x01
			return b
		}},
		{"wrong-version", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], FormatVersion+1)
			return b
		}},
		{"wrong-magic", func(b []byte) []byte {
			copy(b[0:4], "NOPE")
			return b
		}},
		{"wrong-kind", func(b []byte) []byte {
			copy(b[8:12], KindGraph)
			return b
		}},
		{"length-overstated", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[16:24], uint64(len(b)))
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Put(KindProgram, "k", payload); err != nil {
				t.Fatal(err)
			}
			path := blobPath(t, s, KindProgram, "k")
			corrupt(t, path, tc.f)
			if got, ok := s.Get(KindProgram, "k"); ok {
				t.Fatalf("corrupted blob served: %q", got)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatal("corrupted blob not deleted")
			}
			// The rebuild path: a fresh Put of the same content must
			// restore a verifiable blob.
			if err := s.Put(KindProgram, "k", payload); err != nil {
				t.Fatal(err)
			}
			got, ok := s.Get(KindProgram, "k")
			if !ok || !bytes.Equal(got, payload) {
				t.Fatalf("rebuilt Get = %q, %v", got, ok)
			}
		})
	}
}

// A crash between the temp write and the rename leaves a temp file and
// no blob: Get must miss, and the next Open must sweep the leftovers.
func TestMidWriteCrashLeavesNoTrace(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the crash by planting what a dying Put leaves behind: a
	// fully written temp file next to the final path.
	final := s.path(KindProgram, "crashed")
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		t.Fatal(err)
	}
	tmp := final + tmpMarker + "123456"
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(KindProgram, "crashed"); ok {
		t.Fatal("Get served a key whose write never completed")
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("Open left the crashed temp file in place")
	}
	if err := s2.Put(KindProgram, "crashed", []byte("complete")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get(KindProgram, "crashed"); !ok || string(got) != "complete" {
		t.Fatalf("rebuild after crash Get = %q, %v", got, ok)
	}
}

func TestEvictionKeepsNewestUnderBudget(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1024)
	keys := []string{"a", "b", "c", "d"}
	for i, k := range keys {
		payload[0] = byte(i)
		if err := s.Put(KindProgram, k, payload); err != nil {
			t.Fatal(err)
		}
		// Blob mtimes order the eviction; spread them out so the
		// filesystem's timestamp granularity cannot tie them.
		past := time.Unix(1700000000+int64(i)*10, 0)
		if err := os.Chtimes(s.path(KindProgram, k), past, past); err != nil {
			t.Fatal(err)
		}
	}
	// Budget for roughly two blobs: the two oldest must go.
	s.SetMaxBytes(2 * (headerSize + 1024 + footerSize))
	if _, ok := s.Get(KindProgram, "a"); ok {
		t.Fatal("oldest blob survived eviction")
	}
	if _, ok := s.Get(KindProgram, "b"); ok {
		t.Fatal("second-oldest blob survived eviction")
	}
	if _, ok := s.Get(KindProgram, "c"); !ok {
		t.Fatal("newer blob evicted")
	}
	if _, ok := s.Get(KindProgram, "d"); !ok {
		t.Fatal("newest blob evicted")
	}
}

func TestLoadHookSeam(t *testing.T) {
	orig := LoadHook
	defer func() { LoadHook = orig }()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindGraph, "k", []byte("clean")); err != nil {
		t.Fatal(err)
	}
	LoadHook = func(kind, key string, payload []byte) []byte {
		if kind != KindGraph {
			return payload
		}
		return append([]byte(nil), strings.ToUpper(string(payload))...)
	}
	got, ok := s.Get(KindGraph, "k")
	if !ok || string(got) != "CLEAN" {
		t.Fatalf("hook not applied: %q, %v", got, ok)
	}
	LoadHook = nil
	got, ok = s.Get(KindGraph, "k")
	if !ok || string(got) != "clean" {
		t.Fatalf("hook not detachable: %q, %v", got, ok)
	}
}

func TestPayloadAlignment(t *testing.T) {
	if headerSize%8 != 0 {
		t.Fatalf("payload offset %d is not 8-byte aligned; codec words would be misaligned under mmap", headerSize)
	}
}

// TestEvictionToleratesRacingRemover: a concurrent deleter racing the
// evictor (or the verification-failure discard path) must read as
// success — the bytes are gone either way — not surface an error or
// leave the footprint accounting inflated.
func TestEvictionToleratesRacingRemover(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 1024)
	for i := 0; i < 16; i++ {
		key := strings.Repeat("k", i+1)
		if err := s.Put(KindGraph, key, payload); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so the eviction order is deterministic.
		path := blobPath(t, s, KindGraph, key)
		mod := time.Now().Add(time.Duration(i-32) * time.Hour)
		if err := os.Chtimes(path, mod, mod); err != nil {
			t.Fatal(err)
		}
	}

	// A racing remover takes the oldest half out from under the store.
	for i := 0; i < 8; i++ {
		if err := os.Remove(s.path(KindGraph, strings.Repeat("k", i+1))); err != nil {
			t.Fatal(err)
		}
	}

	// discard on an already-removed blob still releases its bytes.
	before := func() int64 { s.mu.Lock(); defer s.mu.Unlock(); return s.total }()
	gone := s.path(KindGraph, "k")
	s.discard(gone, 1024)
	after := func() int64 { s.mu.Lock(); defer s.mu.Unlock(); return s.total }()
	if after != before-1024 {
		t.Errorf("discard of a vanished blob kept its bytes: total %d -> %d", before, after)
	}

	// Squeezing the budget drives evictOver across the removed entries;
	// it must converge to a correct footprint without error.
	s.SetMaxBytes(3 * 1100)
	var total int64
	err = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), blobExt) {
			return err
		}
		if info, err := d.Info(); err == nil {
			total += info.Size()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total > 3*1100 {
		t.Errorf("footprint %d still over the %d budget after eviction", total, 3*1100)
	}
	got := func() int64 { s.mu.Lock(); defer s.mu.Unlock(); return s.total }()
	if got != total {
		t.Errorf("store total %d out of sync with on-disk footprint %d", got, total)
	}

	// Open over a directory whose files vanish concurrently must not
	// fail either; simulate the worst case with a directory that holds
	// survivors only.
	if _, err := Open(dir); err != nil {
		t.Fatalf("re-Open after racing removals: %v", err)
	}
}

// TestPutErrorsAreTransient: store write failures carry the transient
// class so the eval runner's bounded retry can absorb them.
func TestPutErrorsAreTransient(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Turn the fan-out path into a file so MkdirAll fails.
	path := s.path(KindGraph, "key")
	fan := filepath.Dir(path)
	if err := os.WriteFile(fan, []byte("in the way"), 0o644); err != nil {
		t.Fatal(err)
	}
	perr := s.Put(KindGraph, "key", []byte("payload"))
	if perr == nil {
		t.Fatal("Put through a blocked fan-out dir succeeded")
	}
	if !faults.IsTransient(perr) {
		t.Errorf("Put error %v not classified transient", perr)
	}
}
