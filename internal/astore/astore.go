// Package astore is an on-disk, content-addressed artifact store: the
// persistent tier under the in-memory caches (bench.ElabCache for
// compiled programs, fpv.GraphCache for reachability graphs). A blob is
// written once under the SHA-256 of its logical key and read back by
// any later process, so a fresh worker sharing the cache directory
// serves its first request warm.
//
// The store is deliberately ignorant of what it holds: payloads are
// opaque byte slices produced by versioned codecs that live next to the
// types they serialize (verilog.EncodeProgram, fpv.EncodeGraph). Its
// own job is the storage contract:
//
//   - Content addressing. The file name is the hex SHA-256 of
//     kind+"\x00"+key with a two-character fan-out directory, so the
//     key space is flat, collision-free in practice, and safe for any
//     key bytes.
//   - Corruption safety. Every blob carries a fixed header (magic,
//     container version, kind, payload length) and a trailing CRC-64
//     of everything before it. Get re-verifies all of it; any mismatch
//     — truncation, bit flip, version skew, wrong kind — is a cache
//     miss, and the bad file is deleted so it is rebuilt, never
//     trusted.
//   - Crash safety. Put writes to a unique temp file in the final
//     directory and renames it into place, so a reader sees either the
//     whole blob or nothing. Stray temp files from a crashed writer
//     are swept on Open and ignored by Get.
//   - Bounded size. The store tracks its on-disk footprint and, when a
//     Put pushes it over the budget, evicts blobs oldest-modified
//     first until it fits again (mtimes come from the filesystem, so
//     the policy stays deterministic for the process itself).
package astore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"hash/crc64"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"assertionbench/internal/faults"
)

// Blob kinds. Exactly four bytes each; the kind is baked into both the
// file name hash and the blob header, so a key collision across kinds
// is impossible and a renamed file fails verification.
const (
	// KindProgram holds an encoded verilog.Program (see
	// verilog.EncodeProgram).
	KindProgram = "prog"
	// KindGraph holds an encoded fpv.Graph plus optional hunt trace
	// (see fpv.EncodeGraph).
	KindGraph = "grph"
	// KindCost holds a cost-journal entry: the measured verification
	// wall time of one design (8-byte big-endian microseconds), keyed by
	// the design's content hash. Unlike programs and graphs — pure
	// functions of their key — cost blobs are observations that later
	// runs overwrite under a max-merge policy (truncated runs measure
	// lower bounds, so the slowest observation is kept); the atomic
	// rename still guarantees readers never see a torn entry, and a
	// racing writer losing merely re-records on its next run.
	KindCost = "cost"
	// KindRun holds a run manifest: the decided per-design outcomes of
	// one evaluation run (JSON, see eval's manifest codec), keyed by the
	// hash of corpus+seed+options. Like cost blobs it is an observation
	// rewritten as the run progresses — the atomic rename means a
	// resuming process always reads a complete, checksummed snapshot of
	// some prefix of the run, never a torn one.
	KindRun = "runm"
)

// FormatVersion is the container version stamped into every blob
// header. Bump it when the container layout (not a payload codec)
// changes; old blobs then verify as stale and are rebuilt.
const FormatVersion = 1

// DefaultMaxBytes bounds the store's on-disk footprint unless
// SetMaxBytes overrides it. Generous relative to the corpus: the full
// 100-design corpus plus its graphs is a few MB.
const DefaultMaxBytes = 256 << 20

const (
	blobMagic  = "ABST"
	headerSize = 4 + 4 + 4 + 4 + 8 // magic, version, kind, pad, payload length
	footerSize = 8                 // CRC-64 of header+payload
	blobExt    = ".blob"
	tmpMarker  = ".tmp"
)

// crcTable is the ECMA polynomial table shared by writers and readers.
var crcTable = crc64.MakeTable(crc64.ECMA)

// LoadHook, when non-nil, rewrites a payload that already passed
// checksum verification before Get returns it. It exists solely as a
// fault-injection seam for the differential harness: oracle 9's
// mutation tests use it to simulate a codec bug that loads wrong
// content behind a valid checksum — exactly the failure class checksums
// cannot catch and result comparison must. Never set in production.
var LoadHook func(kind, key string, payload []byte) []byte

// Store is a handle on one cache directory. It is safe for concurrent
// use by multiple goroutines; concurrent processes sharing the
// directory are safe too because blobs are immutable once renamed into
// place (a racing Put of the same key writes identical bytes).
type Store struct {
	dir string

	mu       sync.Mutex
	maxBytes int64
	total    int64 // on-disk footprint of *.blob files, maintained incrementally
	hits     int64
	misses   int64
}

// Open creates (if needed) and scans the store directory: stray temp
// files from crashed writers are removed and the current footprint is
// totalled so the size budget holds across processes.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, maxBytes: DefaultMaxBytes}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			// A concurrent evictor (another process sharing the
			// directory) may delete entries mid-walk; a vanished file is
			// not an error, just a smaller footprint.
			if errors.Is(err, fs.ErrNotExist) {
				return nil
			}
			return err
		}
		if d.IsDir() {
			return nil
		}
		if strings.Contains(d.Name(), tmpMarker) {
			os.Remove(path)
			return nil
		}
		if info, err := d.Info(); err == nil {
			s.total += info.Size()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the directory backing the store.
func (s *Store) Dir() string { return s.dir }

// SetMaxBytes replaces the footprint budget (<= 0 restores the
// default) and evicts immediately if the store is already over it.
func (s *Store) SetMaxBytes(n int64) {
	if n <= 0 {
		n = DefaultMaxBytes
	}
	s.mu.Lock()
	s.maxBytes = n
	over := s.total > s.maxBytes
	s.mu.Unlock()
	if over {
		s.evictOver()
	}
}

// Hits reports how many Gets returned a verified payload. Misses
// counts the rest (absent, truncated, corrupt, wrong version). The
// counters let callers — perfbench's warm-start column, dverify's
// oracle 9 — prove the disk tier actually served reads instead of
// silently rebuilding everything.
func (s *Store) Hits() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits
}

// Misses reports how many Gets failed verification or found no blob.
func (s *Store) Misses() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.misses
}

// path maps (kind, key) to the blob's file path: hex SHA-256 of
// kind+NUL+key with a two-character fan-out directory.
func (s *Store) path(kind, key string) string {
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write([]byte(key))
	name := hex.EncodeToString(h.Sum(nil))
	return filepath.Join(s.dir, name[:2], name+blobExt)
}

// Get returns the payload stored under (kind, key), or ok=false on any
// miss: no blob, short file, bad magic/version/kind/length, or CRC
// mismatch. A blob that fails verification is deleted so the caller's
// rebuild replaces it.
func (s *Store) Get(kind, key string) ([]byte, bool) {
	path := s.path(kind, key)
	data, err := os.ReadFile(path)
	if err != nil {
		s.count(false)
		return nil, false
	}
	payload, ok := verify(data, kind)
	if !ok {
		s.discard(path, int64(len(data)))
		s.count(false)
		return nil, false
	}
	if LoadHook != nil {
		payload = LoadHook(kind, key, payload)
	}
	s.count(true)
	return payload, true
}

// verify checks the container framing and checksum, returning the
// payload slice (aliasing data) when everything holds.
func verify(data []byte, kind string) ([]byte, bool) {
	if len(data) < headerSize+footerSize {
		return nil, false
	}
	if string(data[0:4]) != blobMagic {
		return nil, false
	}
	if binary.LittleEndian.Uint32(data[4:8]) != FormatVersion {
		return nil, false
	}
	if string(data[8:12]) != kind {
		return nil, false
	}
	n := binary.LittleEndian.Uint64(data[16:24])
	if n != uint64(len(data)-headerSize-footerSize) {
		return nil, false
	}
	body := data[:len(data)-footerSize]
	want := binary.LittleEndian.Uint64(data[len(data)-footerSize:])
	if crc64.Checksum(body, crcTable) != want {
		return nil, false
	}
	return data[headerSize : headerSize+int(n)], true
}

// Put stores payload under (kind, key), overwriting any existing blob.
// The write is atomic (temp file + rename): a crash mid-write leaves
// only a temp file that the next Open sweeps. Errors are returned for
// callers that care, but the cache contract is best-effort — a failed
// Put just means the next process rebuilds. Returned errors are
// classified faults.Transient: a store I/O hiccup (full disk, racing
// cleanup) is exactly the class a caller's bounded retry can absorb.
func (s *Store) Put(kind, key string, payload []byte) error {
	path := s.path(kind, key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return faults.Transient(err)
	}
	blob := make([]byte, headerSize+len(payload)+footerSize)
	copy(blob[0:4], blobMagic)
	binary.LittleEndian.PutUint32(blob[4:8], FormatVersion)
	copy(blob[8:12], kind)
	binary.LittleEndian.PutUint64(blob[16:24], uint64(len(payload)))
	copy(blob[headerSize:], payload)
	body := blob[:len(blob)-footerSize]
	binary.LittleEndian.PutUint64(blob[len(blob)-footerSize:], crc64.Checksum(body, crcTable))

	// The payload starts at a fixed 24-byte (8-aligned) offset, so a
	// reader mapping the file sees the codec's words aligned.
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+tmpMarker+"*")
	if err != nil {
		return faults.Transient(err)
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return faults.Transient(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return faults.Transient(err)
	}
	var replaced int64
	if info, err := os.Stat(path); err == nil {
		replaced = info.Size()
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return faults.Transient(err)
	}
	s.mu.Lock()
	s.total += int64(len(blob)) - replaced
	over := s.total > s.maxBytes
	s.mu.Unlock()
	if over {
		s.evictOver()
	}
	return nil
}

// discard removes a blob that failed verification and drops its bytes
// from the footprint. A blob a concurrent deleter already removed
// counts as removed — the bytes are gone either way, and keeping them
// in the total would inflate the footprint until eviction resyncs.
func (s *Store) discard(path string, size int64) {
	if err := os.Remove(path); err == nil || errors.Is(err, fs.ErrNotExist) {
		s.mu.Lock()
		s.total -= size
		s.mu.Unlock()
	}
}

func (s *Store) count(hit bool) {
	s.mu.Lock()
	if hit {
		s.hits++
	} else {
		s.misses++
	}
	s.mu.Unlock()
}

// evictOver rescans the directory and deletes blobs oldest-modified
// first until the footprint fits the budget again. The rescan also
// resynchronizes the incremental total with the filesystem (other
// processes may have written to the shared directory).
func (s *Store) evictOver() {
	type blob struct {
		path string
		size int64
		mod  int64
	}
	var blobs []blob
	var total int64
	filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), blobExt) {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		blobs = append(blobs, blob{path, info.Size(), info.ModTime().UnixNano()})
		total += info.Size()
		return nil
	})
	sort.Slice(blobs, func(i, j int) bool {
		if blobs[i].mod != blobs[j].mod {
			return blobs[i].mod < blobs[j].mod
		}
		return blobs[i].path < blobs[j].path
	})
	s.mu.Lock()
	budget := s.maxBytes
	s.mu.Unlock()
	for _, b := range blobs {
		if total <= budget {
			break
		}
		// A racing remover (another evictor, a user rm) getting there
		// first is success: the bytes are freed either way.
		if err := os.Remove(b.path); err == nil || errors.Is(err, fs.ErrNotExist) {
			total -= b.size
		}
	}
	s.mu.Lock()
	s.total = total
	s.mu.Unlock()
}
