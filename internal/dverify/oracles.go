package dverify

import (
	"bytes"
	"context"
	"fmt"
	"strings"

	"assertionbench/internal/astore"
	"assertionbench/internal/bench"
	"assertionbench/internal/eval"
	"assertionbench/internal/fpv"
	"assertionbench/internal/llm"
	"assertionbench/internal/sim"
	"assertionbench/internal/sva"
	"assertionbench/internal/verilog"
)

// monitorStep is the seam between the harness's trace checks and the SVA
// monitor. Production code always routes through this variable; the
// mutation test swaps in a deliberately buggy stepper to prove oracle 2
// catches monitor defects.
var monitorStep = func(m *sva.Monitor, hist [][]uint64) sva.Outcome { return m.Step(hist) }

// batchVerify is the seam between the harness and the batched verifier.
// Production code always routes through this variable; the mutation test
// swaps in a result-corrupting wrapper to prove oracle 5 catches batched
// verdict drift.
var batchVerify = func(e *fpv.Engine, ctx context.Context, nl *verilog.Netlist, cs []*sva.Compiled, opt fpv.Options) []fpv.Result {
	return e.VerifyBatch(ctx, nl, cs, opt)
}

// coneVerify is the seam between the harness and the cone-of-influence
// production path (oracle 6's reduced side). Production code always
// routes through this variable; the mutation test swaps in a
// verdict-corrupting wrapper to prove oracle 6 catches unsound cone
// projections.
var coneVerify = func(e *fpv.Engine, ctx context.Context, nl *verilog.Netlist, c *sva.Compiled, opt fpv.Options) fpv.Result {
	return e.VerifyCompiled(ctx, nl, c, opt)
}

// slicedVerify is the seam between the harness and the bit-sliced
// production path (oracle 7's sliced side). Production code always
// routes through this variable; the mutation test swaps in a
// result-corrupting wrapper to prove oracle 7 catches sliced-vs-scalar
// drift.
var slicedVerify = func(e *fpv.Engine, ctx context.Context, nl *verilog.Netlist, c *sva.Compiled, opt fpv.Options) fpv.Result {
	return e.VerifyCompiled(ctx, nl, c, opt)
}

// staticVerify is the seam between the harness and the static
// pre-verification production path (oracle 8's static side). Production
// code always routes through this variable; the mutation test swaps in a
// verdict-corrupting wrapper to prove oracle 8 catches unsound static
// discharges.
var staticVerify = func(e *fpv.Engine, ctx context.Context, nl *verilog.Netlist, c *sva.Compiled, opt fpv.Options) fpv.Result {
	return e.VerifyCompiled(ctx, nl, c, opt)
}

type harness struct {
	opt    Options
	exhEng *fpv.Engine
	bndEng *fpv.Engine
	// intEng runs the tree-walking reference backend for oracle 4
	// (compiled-vs-interpreted agreement).
	intEng *fpv.Engine
	// batchEng runs the shared-reachability batched verifier for oracle
	// 5, through its own graph cache so the cache paths are exercised.
	batchEng   *fpv.Engine
	batchCache fpv.GraphCache
	// refEng re-verifies per property at the batch's seed (the oracle-5
	// reference side).
	refEng *fpv.Engine
	// coneEng/fullEng run the cone-reduced production path and the
	// full-design reference for oracle 6; slcEng/sclEng run the
	// bit-sliced production path and the scalar reference for oracle 7;
	// stEng/pureEng run the static-pass production path and the
	// pure-search reference for oracle 8.
	coneEng, fullEng *fpv.Engine
	slcEng, sclEng   *fpv.Engine
	stEng, pureEng   *fpv.Engine
	// store is the persistent artifact store oracle 9 round-trips
	// programs and reachability graphs through (one temp-dir store per
	// Run). The engines on either side of that comparison are built fresh
	// per scenario: the warm side must start with an empty memory cache
	// so every graph it serves is a disk read.
	store *astore.Store
}

// Reference (deep) and adversary (deliberately starved) FPV budgets. The
// reference budget is sized to close the product space on a solid
// majority of generated designs (the family parameter bounds in
// bench/fuzzgen.go are chosen against it), so the exhaustive-vs-bounded
// and exhaustive-vs-trace checks engage routinely, not incidentally; the
// starved budget forces input sampling and depth truncation so the
// bounded code paths are exercised against the exhaustive verdicts.
func (h *harness) exhOpt(seed int64) fpv.Options {
	return fpv.Options{MaxProductStates: 60000, MaxInputBits: 12,
		MaxInputSamples: 12, RandomRuns: 16, RandomDepth: 32, Seed: seed}
}

func (h *harness) bndOpt(seed int64) fpv.Options {
	return fpv.Options{MaxProductStates: 160, MaxInputBits: 3,
		MaxInputSamples: 5, RandomRuns: 8, RandomDepth: 20, Seed: seed + 7}
}

type scenarioResult struct {
	properties       int
	exhaustive       int
	cexs             int
	backend          int
	batch            int
	cone             int
	sliced           int
	static           int
	staticDischarged int
	store            int
	storeLoads       int
	refStatus        map[string]int
	disagreements    []Disagreement
}

// checkScenario runs oracles 1, 2 and 4 over one design genome. propSeed
// fixes the property set so shrunk genomes are checked against the same
// property generator stream.
func (h *harness) checkScenario(ctx context.Context, spec bench.FuzzSpec, propSeed int64) scenarioResult {
	if h.exhEng == nil {
		h.exhEng = fpv.NewEngine()
		h.bndEng = fpv.NewEngine()
		h.intEng = fpv.NewEngine()
		h.refEng = fpv.NewEngine()
		h.batchEng = fpv.NewEngine()
		h.batchEng.Graphs = &h.batchCache
		h.coneEng = fpv.NewEngine()
		h.fullEng = fpv.NewEngine()
		h.slcEng = fpv.NewEngine()
		h.sclEng = fpv.NewEngine()
		h.stEng = fpv.NewEngine()
		h.pureEng = fpv.NewEngine()
	}
	res := scenarioResult{refStatus: map[string]int{}}
	d := spec.Build()
	disagree := func(prop, detail string) {
		res.disagreements = append(res.disagreements, Disagreement{
			Oracle: OracleRoundTrip, Spec: spec, Property: prop, Detail: detail,
		})
	}

	// Oracle 1: print/parse round-trip.
	file, err := verilog.Parse(d.Source)
	if err != nil {
		disagree("", fmt.Sprintf("generated design does not parse: %v", err))
		return res
	}
	nl, err := verilog.Elaborate(file, d.Name, nil)
	if err != nil {
		disagree("", fmt.Sprintf("generated design does not elaborate: %v", err))
		return res
	}
	if detail := roundTrip(file, nl, d.Name); detail != "" {
		disagree("", detail)
	}

	// Oracle 4 (design level): the compiled simulator must track the
	// tree-walking interpreter bit for bit along a random stimulus run.
	res.backend++
	if detail := sim.CompareBackends(nl, h.opt.TraceCycles, propSeed); detail != "" {
		res.disagreements = append(res.disagreements, Disagreement{
			Oracle: OracleBackend, Spec: spec, Detail: detail,
		})
	}

	// Oracles 2 and 4 per property: sim vs monitor vs FPV agreement, and
	// compiled-vs-interpreted verdict identity.
	props := genProps(nl, propSeed, h.opt.PropsPerDesign)
	for i, src := range props {
		if ctx.Err() != nil {
			return res
		}
		res.properties++
		pc := h.checkProperty(ctx, nl, src, propSeed+int64(i))
		res.exhaustive += pc.exhaustive
		res.cexs += pc.cexs
		res.backend += pc.backend
		if pc.refStatus != "" {
			res.refStatus[pc.refStatus]++
		}
		if pc.detail != "" && ctx.Err() == nil {
			res.disagreements = append(res.disagreements, Disagreement{
				Oracle: pc.oracle, Spec: spec, Property: src, Detail: pc.detail,
			})
		}
	}

	// Oracles 5, 6 and 7 compare whole verifier configurations per
	// property, so they share one compilation pass over the scenario's
	// compilable properties (parse/compile failures were already
	// reported by checkProperty).
	cs, srcs := compileProps(nl, props)

	// Oracle 5: the batched verifier (shared reachability graph + shared
	// hunt traces) against per-property search, at both budgets.
	nBatch, ds := h.checkBatch(ctx, nl, spec, cs, srcs, propSeed)
	res.batch += nBatch
	res.disagreements = append(res.disagreements, ds...)

	// Oracle 6: cone-of-influence-reduced search against the full-design
	// reference, at both budgets.
	nCone, ds6 := h.checkCone(ctx, nl, spec, cs, srcs, propSeed)
	res.cone += nCone
	res.disagreements = append(res.disagreements, ds6...)

	// Oracle 7: bit-sliced bounded exploration against the scalar
	// reference loops, at both budgets.
	nSliced, ds7 := h.checkSliced(ctx, nl, spec, cs, srcs, propSeed)
	res.sliced += nSliced
	res.disagreements = append(res.disagreements, ds7...)

	// Oracle 8: the static pre-verification pass against the pure-search
	// reference, at both budgets.
	nStatic, nDischarged, ds8 := h.checkStatic(ctx, nl, spec, cs, srcs, propSeed)
	res.static += nStatic
	res.staticDischarged += nDischarged
	res.disagreements = append(res.disagreements, ds8...)

	// Oracle 9: FPV served from the persistent artifact store against
	// the store-free reference, at both budgets.
	nStore, nLoads, ds9 := h.checkStore(ctx, nl, d.Source, d.Name, spec, cs, srcs, propSeed)
	res.store += nStore
	res.storeLoads += nLoads
	res.disagreements = append(res.disagreements, ds9...)
	return res
}

// compileProps compiles the scenario's properties, dropping the ones that
// do not parse or compile (those are checkProperty findings, not input for
// the configuration-comparison oracles).
func compileProps(nl *verilog.Netlist, props []string) ([]*sva.Compiled, []string) {
	var cs []*sva.Compiled
	var srcs []string
	for _, src := range props {
		a, err := sva.Parse(src)
		if err != nil {
			continue
		}
		c, err := sva.Compile(a, nl)
		if err != nil {
			continue
		}
		cs = append(cs, c)
		srcs = append(srcs, src)
	}
	return cs, srcs
}

// checkBatch cross-checks fpv.VerifyBatch against per-property
// VerifyCompiled over the scenario's compilable properties: every result
// field must match (diffResults, CEX stimulus included), and batched
// counter-examples must independently replay on the simulator.
func (h *harness) checkBatch(ctx context.Context, nl *verilog.Netlist, spec bench.FuzzSpec, cs []*sva.Compiled, srcs []string, seed int64) (int, []Disagreement) {
	if len(cs) == 0 {
		return 0, nil
	}
	checks := 0
	var ds []Disagreement
	disagree := func(prop, detail string) {
		ds = append(ds, Disagreement{Oracle: OracleBatch, Spec: spec, Property: prop, Detail: detail})
	}
	for _, label := range []struct {
		name string
		opt  fpv.Options
	}{{"deep", h.exhOpt(seed)}, {"starved", h.bndOpt(seed)}} {
		batch := batchVerify(h.batchEng, ctx, nl, cs, label.opt)
		for i, c := range cs {
			ref := h.refEng.VerifyCompiled(ctx, nl, c, label.opt)
			if ctx.Err() != nil {
				return checks, ds
			}
			checks++
			if d := diffResults(batch[i], ref); d != "" {
				disagree(srcs[i], fmt.Sprintf("batched and per-property FPV disagree at the %s budget: %s", label.name, d))
				continue
			}
			if batch[i].Status != fpv.StatusCEX {
				continue
			}
			// Identity with the reference already pins the stimulus; the
			// replay is the independent re-derivation on the simulator.
			violated, cycle, attempt, err := replayViolation(nl, c, batch[i].CEX.Inputs)
			if err != nil {
				disagree(srcs[i], fmt.Sprintf("batched CEX stimulus cannot be driven on the simulator: %v", err))
			} else if !violated {
				disagree(srcs[i], "batched CEX does not violate the monitor when replayed on the simulator")
			} else if cycle != batch[i].CEX.ViolationCycle || attempt != batch[i].CEX.AttemptCycle {
				disagree(srcs[i], fmt.Sprintf("batched CEX replays at cycle %d (attempt %d), engine reported cycle %d (attempt %d)",
					cycle, attempt, batch[i].CEX.ViolationCycle, batch[i].CEX.AttemptCycle))
			}
		}
	}
	return checks, ds
}

// checkCone cross-checks the cone-of-influence-reduced search against
// the full-design reference (oracle 6). Cone reduction changes the
// explored state space — state counts, search depth, sampled stimulus
// and even the exhaustiveness decision legitimately differ — so the
// check is semantic agreement, not field identity:
//
//   - the reduced product space is a projection of the full one, so
//     whenever the full search closes exhaustively the reduced search
//     must too;
//   - two exhaustive verdicts are both sound, so they must name the
//     same status and vacuity;
//   - a bounded finding (CEX, antecedent witness) on either side is a
//     concrete witness and must not contradict an exhaustive verdict
//     from the other side;
//   - every counter-example from either side must replay on the FULL
//     design — the cone engine reports stimuli in full input layout, so
//     the replay needs no translation.
func (h *harness) checkCone(ctx context.Context, nl *verilog.Netlist, spec bench.FuzzSpec, cs []*sva.Compiled, srcs []string, seed int64) (int, []Disagreement) {
	checks := 0
	var ds []Disagreement
	disagree := func(prop, detail string) {
		ds = append(ds, Disagreement{Oracle: OracleCone, Spec: spec, Property: prop, Detail: detail})
	}
	for _, label := range []struct {
		name string
		opt  fpv.Options
	}{{"deep", h.exhOpt(seed)}, {"starved", h.bndOpt(seed)}} {
		refOpt := label.opt
		refOpt.Cone = fpv.ConeOff
		for i, c := range cs {
			cone := coneVerify(h.coneEng, ctx, nl, c, label.opt)
			full := h.fullEng.VerifyCompiled(ctx, nl, c, refOpt)
			if ctx.Err() != nil {
				return checks, ds
			}
			checks++
			if cone.Status == fpv.StatusError || full.Status == fpv.StatusError {
				if cone.Status != full.Status {
					disagree(srcs[i], fmt.Sprintf("cone-reduced FPV status %v vs full-design %v at the %s budget",
						cone.Status, full.Status, label.name))
				}
				continue
			}
			switch {
			case full.Exhaustive && !cone.Exhaustive:
				disagree(srcs[i], fmt.Sprintf("full-design search closed exhaustively at the %s budget but the cone-reduced search did not (the reduced space is a projection and cannot be larger)", label.name))
				continue
			case cone.Exhaustive && full.Exhaustive:
				if cone.Status != full.Status || cone.NonVacuous != full.NonVacuous {
					disagree(srcs[i], fmt.Sprintf("cone-reduced and full-design FPV disagree at the %s budget: %v (nonvacuous=%v) vs %v (nonvacuous=%v)",
						label.name, cone.Status, cone.NonVacuous, full.Status, full.NonVacuous))
					continue
				}
			case cone.Exhaustive:
				// Full-design bounded findings are concrete witnesses.
				if full.Status == fpv.StatusCEX && cone.Status != fpv.StatusCEX {
					disagree(srcs[i], fmt.Sprintf("full-design bounded FPV found a CEX at the %s budget but the exhaustive cone-reduced verdict is %v", label.name, cone.Status))
					continue
				}
				if full.NonVacuous && cone.Status == fpv.StatusVacuous {
					disagree(srcs[i], fmt.Sprintf("full-design bounded FPV witnessed the antecedent at the %s budget but the exhaustive cone-reduced verdict is vacuous", label.name))
					continue
				}
			}
			// Both-bounded runs carry no comparable verdict, but every CEX
			// is independently checkable.
			for _, r := range []struct {
				side string
				res  fpv.Result
			}{{"cone-reduced", cone}, {"full-design", full}} {
				if r.res.Status != fpv.StatusCEX {
					continue
				}
				violated, cycle, attempt, err := replayViolation(nl, c, r.res.CEX.Inputs)
				if err != nil {
					disagree(srcs[i], fmt.Sprintf("%s CEX stimulus cannot be driven on the simulator (%s budget): %v", r.side, label.name, err))
				} else if !violated {
					disagree(srcs[i], fmt.Sprintf("%s CEX does not violate the monitor when replayed on the simulator (%s budget)", r.side, label.name))
				} else if cycle != r.res.CEX.ViolationCycle || attempt != r.res.CEX.AttemptCycle {
					disagree(srcs[i], fmt.Sprintf("%s CEX replays at cycle %d (attempt %d), engine reported cycle %d (attempt %d) (%s budget)",
						r.side, cycle, attempt, r.res.CEX.ViolationCycle, r.res.CEX.AttemptCycle, label.name))
				}
			}
		}
	}
	return checks, ds
}

// checkSliced cross-checks the bit-sliced bounded exploration against the
// scalar reference loops (oracle 7). Slicing is a pure execution-strategy
// change — 64 trajectories per pass instead of one, drawn from the same
// seeded streams — so unlike the cone the results must be identical field
// for field, down to the CEX stimulus.
func (h *harness) checkSliced(ctx context.Context, nl *verilog.Netlist, spec bench.FuzzSpec, cs []*sva.Compiled, srcs []string, seed int64) (int, []Disagreement) {
	checks := 0
	var ds []Disagreement
	for _, label := range []struct {
		name string
		opt  fpv.Options
	}{{"deep", h.exhOpt(seed)}, {"starved", h.bndOpt(seed)}} {
		refOpt := label.opt
		refOpt.Slices = fpv.SlicesOff
		for i, c := range cs {
			sliced := slicedVerify(h.slcEng, ctx, nl, c, label.opt)
			scalar := h.sclEng.VerifyCompiled(ctx, nl, c, refOpt)
			if ctx.Err() != nil {
				return checks, ds
			}
			checks++
			if d := diffResults(sliced, scalar); d != "" {
				ds = append(ds, Disagreement{Oracle: OracleSliced, Spec: spec, Property: srcs[i],
					Detail: fmt.Sprintf("bit-sliced and scalar FPV disagree at the %s budget: %s", label.name, d)})
			}
		}
	}
	return checks, ds
}

// checkStatic cross-checks FPV with the static pre-verification pass
// against the pure-search reference (oracle 8). The pass may settle a
// property without any search (an abstract-interpretation discharge, or a
// zero-stimulus witness) and it sweeps statically constant nets out of
// the cone, so state counts, depth and stimulus legitimately differ; the
// contract is semantic, like the cone oracle's:
//
//   - a swept cone keeps a subset of the unswept cone's nets and a
//     discharge is always exhaustive, so whenever the pure search closes
//     exhaustively the static side must too;
//   - two exhaustive verdicts are both sound, so they must name the same
//     status and vacuity;
//   - a bounded finding (CEX, antecedent witness) on either side is a
//     concrete witness and must not contradict an exhaustive verdict
//     from the other side;
//   - every counter-example from either side — in particular the
//     zero-stimulus witnesses the static pass fabricates without
//     searching — must replay on the full design at the reported cycle.
func (h *harness) checkStatic(ctx context.Context, nl *verilog.Netlist, spec bench.FuzzSpec, cs []*sva.Compiled, srcs []string, seed int64) (int, int, []Disagreement) {
	checks, discharged := 0, 0
	var ds []Disagreement
	disagree := func(prop, detail string) {
		ds = append(ds, Disagreement{Oracle: OracleStatic, Spec: spec, Property: prop, Detail: detail})
	}
	for _, label := range []struct {
		name string
		opt  fpv.Options
	}{{"deep", h.exhOpt(seed)}, {"starved", h.bndOpt(seed)}} {
		refOpt := label.opt
		refOpt.Static = fpv.StaticOff
		for i, c := range cs {
			st := staticVerify(h.stEng, ctx, nl, c, label.opt)
			pure := h.pureEng.VerifyCompiled(ctx, nl, c, refOpt)
			if ctx.Err() != nil {
				return checks, discharged, ds
			}
			checks++
			if st.Static && label.name == "deep" {
				discharged++
			}
			if st.Status == fpv.StatusError || pure.Status == fpv.StatusError {
				if st.Status != pure.Status {
					disagree(srcs[i], fmt.Sprintf("static-pass FPV status %v vs pure-search %v at the %s budget",
						st.Status, pure.Status, label.name))
				}
				continue
			}
			switch {
			case pure.Exhaustive && !st.Exhaustive:
				disagree(srcs[i], fmt.Sprintf("pure search closed exhaustively at the %s budget but the static-pass search did not (discharges are exhaustive and the swept cone cannot be larger)", label.name))
				continue
			case st.Exhaustive && pure.Exhaustive:
				if st.Status != pure.Status || st.NonVacuous != pure.NonVacuous {
					disagree(srcs[i], fmt.Sprintf("static-pass and pure-search FPV disagree at the %s budget: %v (nonvacuous=%v) vs %v (nonvacuous=%v)",
						label.name, st.Status, st.NonVacuous, pure.Status, pure.NonVacuous))
					continue
				}
			case st.Exhaustive:
				// Pure-search bounded findings are concrete witnesses.
				if pure.Status == fpv.StatusCEX && st.Status != fpv.StatusCEX {
					disagree(srcs[i], fmt.Sprintf("pure-search bounded FPV found a CEX at the %s budget but the exhaustive static-pass verdict is %v", label.name, st.Status))
					continue
				}
				if pure.NonVacuous && st.Status == fpv.StatusVacuous {
					disagree(srcs[i], fmt.Sprintf("pure-search bounded FPV witnessed the antecedent at the %s budget but the exhaustive static-pass verdict is vacuous", label.name))
					continue
				}
			}
			// Every CEX from either side is independently checkable — for a
			// statically fabricated witness this replay is the only dynamic
			// evidence it ever gets.
			for _, r := range []struct {
				side string
				res  fpv.Result
			}{{"static-pass", st}, {"pure-search", pure}} {
				if r.res.Status != fpv.StatusCEX {
					continue
				}
				violated, cycle, attempt, err := replayViolation(nl, c, r.res.CEX.Inputs)
				if err != nil {
					disagree(srcs[i], fmt.Sprintf("%s CEX stimulus cannot be driven on the simulator (%s budget): %v", r.side, label.name, err))
				} else if !violated {
					disagree(srcs[i], fmt.Sprintf("%s CEX does not violate the monitor when replayed on the simulator (%s budget)", r.side, label.name))
				} else if cycle != r.res.CEX.ViolationCycle || attempt != r.res.CEX.AttemptCycle {
					disagree(srcs[i], fmt.Sprintf("%s CEX replays at cycle %d (attempt %d), engine reported cycle %d (attempt %d) (%s budget)",
						r.side, cycle, attempt, r.res.CEX.ViolationCycle, r.res.CEX.AttemptCycle, label.name))
				}
			}
		}
	}
	return checks, discharged, ds
}

// checkStore cross-checks FPV served from the persistent artifact store
// against a store-free reference (oracle 9). The compiled execution
// program rides through the store first — encode, Put, Get (through the
// astore.LoadHook mutation seam), decode, byte-stable re-encode, and
// adoption by a fresh elaboration of the same source — then each budget
// runs the batch three ways: a store-free reference over the original
// netlist, a populate pass whose cache writes its exploration behind to
// disk, and a warm pass through another empty memory cache over the same
// store, so every graph the warm pass touches is a disk read. The warm
// results must reproduce the reference field for field (a disk-loaded
// graph replays the exact exploration the search would redo), and warm
// counter-examples must independently replay on the simulator.
func (h *harness) checkStore(ctx context.Context, nl *verilog.Netlist, src, top string, spec bench.FuzzSpec, cs []*sva.Compiled, srcs []string, seed int64) (checks, loads int, ds []Disagreement) {
	if h.store == nil || len(cs) == 0 {
		return 0, 0, nil
	}
	hits0 := h.store.Hits()
	defer func() { loads = int(h.store.Hits() - hits0) }()
	disagree := func(prop, detail string) {
		ds = append(ds, Disagreement{Oracle: OracleStore, Spec: spec, Property: prop, Detail: detail})
	}

	// A fresh elaboration stands in for the "other process" that reads
	// the blobs back: it shares no pointers with nl, only source text.
	file2, err := verilog.Parse(src)
	if err != nil {
		return checks, loads, ds // oracle 1's finding, not ours
	}
	nl2, err := verilog.Elaborate(file2, top, nil)
	if err != nil {
		return checks, loads, ds
	}
	progKey := fmt.Sprintf("dv\x00%x", nl.ContentHash())
	blob := verilog.EncodeProgram(nl.Program())
	if err := h.store.Put(astore.KindProgram, progKey, blob); err != nil {
		disagree("", fmt.Sprintf("program blob does not write to the store: %v", err))
		return checks, loads, ds
	}
	if back, ok := h.store.Get(astore.KindProgram, progKey); !ok {
		disagree("", "program blob written to the store does not read back")
	} else if p2, err := verilog.DecodeProgram(back); err != nil {
		disagree("", fmt.Sprintf("stored program blob does not decode: %v", err))
	} else if re := verilog.EncodeProgram(p2); !bytes.Equal(re, blob) {
		disagree("", "program blob is not byte-stable across a store round-trip")
	} else if !nl2.AdoptProgram(p2) {
		// The miss contract (discard and rebuild) covers corrupt blobs,
		// but a healthy blob a same-source netlist rejects means the
		// shape check or the codec is wrong.
		disagree("", "fresh elaboration of the same source rejects the stored program")
	}
	cs2, _ := compileProps(nl2, srcs)
	if len(cs2) != len(cs) {
		disagree("", fmt.Sprintf("only %d of %d properties recompile against the fresh elaboration", len(cs2), len(cs)))
		return checks, loads, ds
	}

	for _, label := range []struct {
		name string
		opt  fpv.Options
	}{{"deep", h.exhOpt(seed)}, {"starved", h.bndOpt(seed)}} {
		refE := fpv.NewEngine()
		refE.Graphs = &fpv.GraphCache{}
		ref := refE.VerifyBatch(ctx, nl, cs, label.opt)

		popE := fpv.NewEngine()
		popE.Graphs = &fpv.GraphCache{}
		popE.Graphs.SetDisk(h.store)
		popE.VerifyBatch(ctx, nl2, cs2, label.opt)

		warmE := fpv.NewEngine()
		warmE.Graphs = &fpv.GraphCache{}
		warmE.Graphs.SetDisk(h.store)
		warm := warmE.VerifyBatch(ctx, nl2, cs2, label.opt)
		if ctx.Err() != nil {
			return checks, loads, ds
		}
		for i := range cs {
			checks++
			if d := diffResults(warm[i], ref[i]); d != "" {
				disagree(srcs[i], fmt.Sprintf("disk-served and store-free FPV disagree at the %s budget: %s", label.name, d))
				continue
			}
			if warm[i].Status != fpv.StatusCEX {
				continue
			}
			violated, cycle, attempt, err := replayViolation(nl, cs[i], warm[i].CEX.Inputs)
			if err != nil {
				disagree(srcs[i], fmt.Sprintf("disk-served CEX stimulus cannot be driven on the simulator (%s budget): %v", label.name, err))
			} else if !violated {
				disagree(srcs[i], fmt.Sprintf("disk-served CEX does not violate the monitor when replayed on the simulator (%s budget)", label.name))
			} else if cycle != warm[i].CEX.ViolationCycle || attempt != warm[i].CEX.AttemptCycle {
				disagree(srcs[i], fmt.Sprintf("disk-served CEX replays at cycle %d (attempt %d), engine reported cycle %d (attempt %d) (%s budget)",
					cycle, attempt, warm[i].CEX.ViolationCycle, warm[i].CEX.AttemptCycle, label.name))
			}
		}
	}
	return checks, loads, ds
}

// roundTrip checks PrintFile -> Parse -> Elaborate netlist identity and
// printer idempotence.
func roundTrip(file *verilog.SourceFile, nl *verilog.Netlist, top string) string {
	printed := verilog.PrintFile(file)
	file2, err := verilog.Parse(printed)
	if err != nil {
		return fmt.Sprintf("printed design does not re-parse: %v", err)
	}
	nl2, err := verilog.Elaborate(file2, top, nil)
	if err != nil {
		return fmt.Sprintf("printed design does not re-elaborate: %v", err)
	}
	if !verilog.SignatureEqual(nl, nl2) {
		return "netlist signature changed across print/parse round-trip:\n" +
			firstDiff(nl.Signature(), nl2.Signature())
	}
	if printed2 := verilog.PrintFile(file2); printed2 != printed {
		return "printer is not idempotent:\n" + firstDiff(printed, printed2)
	}
	return ""
}

// propCheck carries one property's cross-check outcome: the first
// contradiction (with the oracle it belongs to) and the report counters.
type propCheck struct {
	detail     string
	oracle     Oracle
	exhaustive int
	cexs       int
	backend    int
	refStatus  string
}

func (p *propCheck) fail(oracle Oracle, format string, args ...any) propCheck {
	p.oracle = oracle
	p.detail = fmt.Sprintf(format, args...)
	return *p
}

// checkProperty cross-checks one property: exhaustive FPV vs bounded FPV
// vs the monitor over simulated traces vs counter-example replay
// (oracle 2), and the compiled execution backend vs the tree-walking
// interpreter (oracle 4). Returns on the first contradiction.
func (h *harness) checkProperty(ctx context.Context, nl *verilog.Netlist, src string, seed int64) propCheck {
	var pc propCheck
	a, err := sva.Parse(src)
	if err != nil {
		return pc.fail(OracleAgreement, "generated property does not parse: %v", err)
	}
	// The assertion's canonical rendering must itself re-parse to the
	// same canonical form (the monitor-facing analogue of oracle 1).
	canon := a.String()
	if a2, err := sva.Parse(canon); err != nil {
		return pc.fail(OracleAgreement, "canonical rendering %q does not re-parse: %v", canon, err)
	} else if a2.String() != canon {
		return pc.fail(OracleAgreement, "canonical rendering is unstable: %q -> %q", canon, a2.String())
	}
	c, err := sva.Compile(a, nl)
	if err != nil {
		return pc.fail(OracleAgreement, "generated property does not compile: %v", err)
	}

	exh := h.exhEng.VerifyCompiled(ctx, nl, c, h.exhOpt(seed))
	bnd := h.bndEng.VerifyCompiled(ctx, nl, c, h.bndOpt(seed))
	if ctx.Err() != nil {
		return pc
	}
	if exh.Status == fpv.StatusError {
		return pc.fail(OracleAgreement, "reference FPV errored on a well-formed property: %v", exh.Err)
	}
	if bnd.Status == fpv.StatusError {
		return pc.fail(OracleAgreement, "bounded FPV errored on a well-formed property: %v", bnd.Err)
	}

	pc.refStatus = exh.Status.String()
	if exh.Exhaustive {
		pc.exhaustive++
	}

	// Oracle 4: re-verify on the interpreting backend at the reference
	// budget — every field of the result, down to state counts, search
	// depth and the CEX stimulus, must be identical to the compiled run.
	intOpt := h.exhOpt(seed)
	intOpt.Backend = fpv.BackendInterp
	intp := h.intEng.VerifyCompiled(ctx, nl, c, intOpt)
	if ctx.Err() != nil {
		return pc
	}
	pc.backend++
	if d := diffResults(exh, intp); d != "" {
		return pc.fail(OracleBackend, "compiled and interpreted FPV disagree: %s", d)
	}

	// Bounded mode must never contradict exhaustive mode: a bounded CEX
	// is a concrete witness, and a bounded non-vacuity witness is real.
	if exh.Exhaustive {
		if bnd.Status == fpv.StatusCEX && exh.Status != fpv.StatusCEX {
			return pc.fail(OracleAgreement, "bounded FPV found a CEX but exhaustive verdict is %v", exh.Status)
		}
		if bnd.NonVacuous && exh.Status == fpv.StatusVacuous {
			return pc.fail(OracleAgreement, "bounded FPV witnessed the antecedent but exhaustive verdict is vacuous")
		}
	}

	// Every CEX must replay on the event-driven simulator with the
	// monitor flagging the violation at the reported cycle.
	for _, r := range []struct {
		label string
		res   fpv.Result
	}{{"exhaustive", exh}, {"bounded", bnd}} {
		if r.res.Status != fpv.StatusCEX {
			continue
		}
		pc.cexs++
		violated, cycle, attempt, err := replayViolation(nl, c, r.res.CEX.Inputs)
		if err != nil {
			return pc.fail(OracleAgreement, "%s FPV CEX stimulus cannot be driven on the simulator: %v", r.label, err)
		}
		if !violated {
			return pc.fail(OracleAgreement, "%s FPV CEX does not violate the monitor when replayed on the simulator", r.label)
		}
		if cycle != r.res.CEX.ViolationCycle || attempt != r.res.CEX.AttemptCycle {
			return pc.fail(OracleAgreement, "%s FPV CEX replays at cycle %d (attempt %d), engine reported cycle %d (attempt %d)",
				r.label, cycle, attempt, r.res.CEX.ViolationCycle, r.res.CEX.AttemptCycle)
		}
	}

	// The monitor over random simulation traces must agree with the
	// exhaustive verdict: a trace violation refutes a proof, and a trace
	// antecedent witness refutes vacuity. The trace must start at the
	// power-on state (resetCycles = 0): the checker zero-pads pre-trace
	// history, which matches the FPV root exactly at power-on, whereas a
	// warm-up prefix would fabricate (state, zero-history) product states
	// no real path exhibits and let $past/$fell atoms witness antecedents
	// the exhaustive search correctly calls unreachable — the harness
	// found exactly that as a false vacuity "disagreement" on the reset
	// synchronizer family before this alignment.
	for t := 0; t < h.opt.TraceCount; t++ {
		tr, err := sim.RandomTrace(nl, h.opt.TraceCycles, 0, seed*31+int64(t))
		if err != nil {
			return pc.fail(OracleAgreement, "random trace simulation failed: %v", err)
		}
		violations, nonVacuous := fpv.CheckTraceCompiled(nl, c, tr, monitorStep)
		if exh.Exhaustive {
			if len(violations) > 0 && exh.Status != fpv.StatusCEX {
				return pc.fail(OracleAgreement, "monitor violation at trace cycle %d but exhaustive verdict is %v",
					violations[0].ViolationCycle, exh.Status)
			}
			if nonVacuous && exh.Status == fpv.StatusVacuous {
				return pc.fail(OracleAgreement, "monitor witnessed the antecedent on a trace but exhaustive verdict is vacuous")
			}
		}
		// Oracle 4: the compiled and interpreting monitors must flag the
		// same violations at the same cycles over the same trace.
		iv, inv, err := fpv.CheckTraceBackend(nl, c, tr, monitorStep, fpv.BackendInterp)
		if err != nil {
			return pc.fail(OracleBackend, "interpreting trace check errored: %v", err)
		}
		pc.backend++
		if len(iv) != len(violations) || inv != nonVacuous {
			return pc.fail(OracleBackend, "monitor backends disagree on a trace: compiled %d violations (nonvacuous=%v), interp %d (nonvacuous=%v)",
				len(violations), nonVacuous, len(iv), inv)
		}
		for k := range iv {
			if iv[k] != violations[k] {
				return pc.fail(OracleBackend, "monitor backends disagree on violation %d: compiled cycle %d (attempt %d), interp cycle %d (attempt %d)",
					k, violations[k].ViolationCycle, violations[k].AttemptCycle, iv[k].ViolationCycle, iv[k].AttemptCycle)
			}
		}
	}
	return pc
}

// diffResults compares two FPV results field by field (including the CEX
// stimulus), returning a human-readable description of the first
// difference or "" when identical.
func diffResults(a, b fpv.Result) string {
	switch {
	case a.Status != b.Status:
		return fmt.Sprintf("status %v vs %v", a.Status, b.Status)
	case a.NonVacuous != b.NonVacuous:
		return fmt.Sprintf("nonvacuous %v vs %v", a.NonVacuous, b.NonVacuous)
	case a.Exhaustive != b.Exhaustive:
		return fmt.Sprintf("exhaustive %v vs %v", a.Exhaustive, b.Exhaustive)
	case a.Static != b.Static:
		return fmt.Sprintf("statically discharged %v vs %v", a.Static, b.Static)
	case a.States != b.States:
		return fmt.Sprintf("visited states %d vs %d", a.States, b.States)
	case a.Depth != b.Depth:
		return fmt.Sprintf("depth %d vs %d", a.Depth, b.Depth)
	case (a.CEX == nil) != (b.CEX == nil):
		return fmt.Sprintf("cex presence %v vs %v", a.CEX != nil, b.CEX != nil)
	}
	if a.CEX == nil {
		return ""
	}
	if a.CEX.ViolationCycle != b.CEX.ViolationCycle || a.CEX.AttemptCycle != b.CEX.AttemptCycle {
		return fmt.Sprintf("cex at cycle %d (attempt %d) vs cycle %d (attempt %d)",
			a.CEX.ViolationCycle, a.CEX.AttemptCycle, b.CEX.ViolationCycle, b.CEX.AttemptCycle)
	}
	if len(a.CEX.Inputs) != len(b.CEX.Inputs) {
		return fmt.Sprintf("cex stimulus length %d vs %d", len(a.CEX.Inputs), len(b.CEX.Inputs))
	}
	for t := range a.CEX.Inputs {
		for i := range a.CEX.Inputs[t] {
			if a.CEX.Inputs[t][i] != b.CEX.Inputs[t][i] {
				return fmt.Sprintf("cex stimulus differs at cycle %d input %d: %#x vs %#x",
					t, i, a.CEX.Inputs[t][i], b.CEX.Inputs[t][i])
			}
		}
	}
	return ""
}

// replayViolation drives the recorded per-cycle inputs through a fresh
// simulator, then checks the sampled trace with the production trace
// checker (through the mutation seam), returning whether (and where) the
// first violation fired. This is the independent re-derivation of an FPV
// CEX: it shares no state with the engine that produced it, and the
// checking loop is the very one trace-based ABV uses in production.
func replayViolation(nl *verilog.Netlist, c *sva.Compiled, inputs [][]uint64) (bool, int, int, error) {
	s := sim.New(nl)
	var sampled [][]uint64
	for t, in := range inputs {
		if err := s.SetInputs(in); err != nil {
			// A stimulus the engine recorded but the simulator rejects is a
			// finding of its own; surface it instead of reporting a
			// no-violation replay.
			return false, 0, 0, fmt.Errorf("cycle %d: %w", t, err)
		}
		s.Settle()
		sampled = append(sampled, append([]uint64(nil), s.Env()...))
		s.Step()
	}
	violations, _ := fpv.CheckTraceCompiled(nl, c, sim.TraceFromSamples(nl, sampled), monitorStep)
	if len(violations) == 0 {
		return false, 0, 0, nil
	}
	return true, violations[0].ViolationCycle, violations[0].AttemptCycle, nil
}

// --- oracle 3: determinism across eval.Stream configurations ---

// selfCheckExamples are fixed in-context examples for the determinism
// runs: known-good assertions over the training arbiter, so oracle 3
// needs no miner pass.
func selfCheckExamples() []llm.Example {
	return []llm.Example{{
		Name:   "arb2",
		Source: bench.TrainArbiter,
		Assertions: []string{
			"req1 == 1 && req2 == 0 |-> gnt1 == 1;",
			"gnt2 == 1 |-> req2 == 1;",
		},
	}}
}

// checkDeterminism runs the generated corpus through eval.Stream in
// sequential, parallel and sharded configurations and compares the
// rendered outcome streams byte for byte.
func (h *harness) checkDeterminism(ctx context.Context, corpus []bench.Design) (int, []Disagreement, error) {
	gen := eval.NewModelGenerator(llm.GPT4o())
	icl := selfCheckExamples()
	base := eval.RunOptions{
		Shots: 1, Seed: h.opt.Seed, UseCorrector: true,
		FPV: fpv.Options{MaxProductStates: 1500, MaxInputBits: 8,
			MaxInputSamples: 8, RandomRuns: 8, RandomDepth: 24, Seed: h.opt.Seed},
	}
	collect := func(opt eval.RunOptions) (string, error) {
		var sb strings.Builder
		for o, err := range eval.Stream(ctx, gen, icl, corpus, opt) {
			if err != nil {
				return "", err
			}
			renderOutcome(&sb, o)
		}
		return sb.String(), nil
	}

	runs := 0
	run := func(label string, opt eval.RunOptions) (string, error) {
		s, err := collect(opt)
		if err != nil {
			return "", fmt.Errorf("determinism %s run: %w", label, err)
		}
		runs++
		return s, nil
	}

	seqOpt := base
	seqOpt.Workers = 1
	seq, err := run("sequential", seqOpt)
	if err != nil {
		return runs, nil, err
	}
	parOpt := base
	parOpt.Workers = 4
	par, err := run("parallel", parOpt)
	if err != nil {
		return runs, nil, err
	}
	var shards strings.Builder
	for i := 0; i < 2; i++ {
		shOpt := base
		shOpt.Workers = 2
		shOpt.ShardIndex, shOpt.ShardCount = i, 2
		s, err := run(fmt.Sprintf("shard %d/2", i), shOpt)
		if err != nil {
			return runs, nil, err
		}
		shards.WriteString(s)
	}

	var ds []Disagreement
	if par != seq {
		ds = append(ds, Disagreement{Oracle: OracleDeterminism,
			Detail: "parallel eval.Stream differs from sequential at the same seed:\n" + firstDiff(seq, par)})
	}
	if shards.String() != seq {
		ds = append(ds, Disagreement{Oracle: OracleDeterminism,
			Detail: "concatenated shard streams differ from the unsharded stream:\n" + firstDiff(seq, shards.String())})
	}
	return runs, ds, nil
}

// --- oracle 10: dispatch-order independence of eval.Stream ---

// checkSched runs the generated corpus through every scheduled dispatch
// mode and compares the rendered streams byte for byte against the
// sequential reference. checkDeterminism already pins the default (cost)
// parallel path; this oracle pins the dispatch knob itself — cost and
// contiguous plans walk the corpus in very different orders, and both
// must be invisible through the reorder buffer, shards included.
func (h *harness) checkSched(ctx context.Context, corpus []bench.Design) (int, []Disagreement, error) {
	gen := eval.NewModelGenerator(llm.GPT4o())
	icl := selfCheckExamples()
	base := eval.RunOptions{
		Shots: 1, Seed: h.opt.Seed, UseCorrector: true,
		FPV: fpv.Options{MaxProductStates: 1500, MaxInputBits: 8,
			MaxInputSamples: 8, RandomRuns: 8, RandomDepth: 24, Seed: h.opt.Seed},
	}
	collect := func(label string, opt eval.RunOptions) (string, error) {
		var sb strings.Builder
		for o, err := range eval.Stream(ctx, gen, icl, corpus, opt) {
			if err != nil {
				return "", fmt.Errorf("sched %s run: %w", label, err)
			}
			renderOutcome(&sb, o)
		}
		return sb.String(), nil
	}

	seqOpt := base
	seqOpt.Workers = 1
	seq, err := collect("sequential", seqOpt)
	if err != nil {
		return 0, nil, err
	}

	checks := 0
	var ds []Disagreement
	for _, dispatch := range []string{eval.DispatchCost, eval.DispatchContiguous} {
		opt := base
		opt.Workers = 4
		opt.Dispatch = dispatch
		got, err := collect(dispatch, opt)
		if err != nil {
			return checks, ds, err
		}
		checks++
		if got != seq {
			ds = append(ds, Disagreement{Oracle: OracleSched,
				Detail: fmt.Sprintf("%s-dispatched eval.Stream differs from sequential at the same seed:\n%s", dispatch, firstDiff(seq, got))})
		}
	}

	var shards strings.Builder
	for i := 0; i < 2; i++ {
		opt := base
		opt.Workers = 2
		opt.Dispatch = eval.DispatchCost
		opt.ShardIndex, opt.ShardCount = i, 2
		s, err := collect(fmt.Sprintf("shard %d/2", i), opt)
		if err != nil {
			return checks, ds, err
		}
		shards.WriteString(s)
	}
	checks++
	if shards.String() != seq {
		ds = append(ds, Disagreement{Oracle: OracleSched,
			Detail: "concatenated cost-dispatched shard streams differ from the unsharded stream:\n" + firstDiff(seq, shards.String())})
	}
	return checks, ds, nil
}

// renderOutcome serializes one DesignOutcome canonically for comparison.
func renderOutcome(sb *strings.Builder, o eval.DesignOutcome) {
	fmt.Fprintf(sb, "#%d %s|gen=%q|corr=%q|verdicts=", o.Index, o.Design, o.Generated, o.Corrected)
	for _, v := range o.Verdicts {
		sb.WriteString(v.String())
		sb.WriteByte(',')
	}
	fmt.Fprintf(sb, "|off=%d|gnd=%d|trunc=%v|err=%v:%q\n", o.OffTask, o.Grounded, o.Truncated, o.Errored, o.Err)
}

// firstDiff locates the first differing line of two renderings.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  a: %s\n  b: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}
