package dverify

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync"

	"assertionbench/internal/bench"
	"assertionbench/internal/eval"
	"assertionbench/internal/faultinject"
	"assertionbench/internal/fpv"
	"assertionbench/internal/llm"
	"assertionbench/internal/verilog"
)

// --- oracle 11: fault tolerance vs the fault-free reference ---

// countingVerifier wraps the real engine and tallies Verify/VerifyBatch
// calls per design name across all workers. Phase 3 uses it to prove
// resumed runs serve manifest-decided designs without re-verification —
// the one mutation (a dropped manifest entry) that stream comparison
// cannot see, because re-verifying a decided design reproduces the same
// verdicts.
type countingVerifier struct {
	inner eval.Verifier
	mu    *sync.Mutex
	calls map[string]int
}

func (c countingVerifier) note(d bench.Design) {
	c.mu.Lock()
	c.calls[d.Name]++
	c.mu.Unlock()
}

func (c countingVerifier) Verify(ctx context.Context, d bench.Design, nl *verilog.Netlist, a string, opt fpv.Options) fpv.Result {
	c.note(d)
	return c.inner.Verify(ctx, d, nl, a, opt)
}

func (c countingVerifier) VerifyBatch(ctx context.Context, d bench.Design, nl *verilog.Netlist, as []string, opt fpv.Options) []fpv.Result {
	c.note(d)
	return c.inner.(eval.BatchVerifier).VerifyBatch(ctx, d, nl, as, opt)
}

// checkFault drives the fault-tolerance layer through three phases over
// the generated corpus and compares each against the fault-free
// sequential reference:
//
//  1. absorbed chaos — a deterministic plan of bounded transient faults
//     (error on the first two attempts of one design, a first-attempt
//     panic on another, a slow-design delay on a third), run parallel
//     with Retries=2 under ErrorPolicyContinue and a journaling store,
//     must be byte-identical to the reference;
//  2. surfaced failure — a permanent panic on one design under the same
//     options must stream every other design identical to the reference
//     and exactly that design as an errored outcome at its position;
//  3. resume convergence — with faults cleared, resuming over the
//     phase-2 manifest must reproduce the reference exactly, with zero
//     verifier calls on manifest-decided designs and at least one on
//     the previously failed design.
//
// The corpus is capped at 8 designs: the oracle runs the corpus four
// times, and fault placement only needs three distinct targets.
func (h *harness) checkFault(ctx context.Context, corpus []bench.Design) (int, []Disagreement, error) {
	if len(corpus) > 8 {
		corpus = corpus[:8]
	}
	n := len(corpus)
	gen := eval.NewModelGenerator(llm.GPT4o())
	icl := selfCheckExamples()
	base := eval.RunOptions{
		Shots: 1, Seed: h.opt.Seed, UseCorrector: true,
		FPV: fpv.Options{MaxProductStates: 1500, MaxInputBits: 8,
			MaxInputSamples: 8, RandomRuns: 8, RandomDepth: 24, Seed: h.opt.Seed},
	}
	collect := func(label string, opt eval.RunOptions) (string, []eval.DesignOutcome, error) {
		var sb strings.Builder
		var outs []eval.DesignOutcome
		for o, err := range eval.Stream(ctx, gen, icl, corpus, opt) {
			if err != nil {
				return "", nil, fmt.Errorf("fault %s run: %w", label, err)
			}
			renderOutcome(&sb, o)
			outs = append(outs, o)
		}
		return sb.String(), outs, nil
	}

	// The reference must be truly store-free (no manifest journaling), so
	// detach any process-wide store for its duration and restore the
	// detached state when the oracle finishes.
	if err := bench.SetCacheDir(""); err != nil {
		return 0, nil, fmt.Errorf("fault oracle: detach store: %w", err)
	}
	defer bench.SetCacheDir("")

	seqOpt := base
	seqOpt.Workers = 1
	seq, _, err := collect("sequential reference", seqOpt)
	if err != nil {
		return 0, nil, err
	}

	// Seeded fault placement: three targets spread over the corpus
	// (modular collisions at tiny corpora are harmless — every phase-1
	// rule stays bounded within the retry budget either way).
	tIdx := int(uint64(h.opt.Seed*2654435761) % uint64(n))
	pIdx := (tIdx + 1) % n
	sIdx := (tIdx + 2) % n

	dir, err := os.MkdirTemp("", "dverify-chaos-")
	if err != nil {
		return 0, nil, fmt.Errorf("fault oracle: chaos store dir: %w", err)
	}
	defer os.RemoveAll(dir)

	checks := 0
	var ds []Disagreement

	// Phase 1: every fault bounded within the retry budget — the chaos
	// run must be indistinguishable from the reference.
	restore := faultinject.Plan{Faults: []faultinject.Fault{
		{Index: tIdx, Mode: faultinject.ModeError, Attempts: 2},
		{Index: pIdx, Mode: faultinject.ModePanic, Attempts: 1},
		{Index: sIdx, Mode: faultinject.ModeDelay},
	}}.Install()
	chaosOpt := base
	chaosOpt.Workers = 4
	chaosOpt.Retries = 2
	chaosOpt.ErrorPolicy = eval.ErrorPolicyContinue
	chaosOpt.CacheDir = dir
	chaos, _, err := collect("absorbed chaos", chaosOpt)
	restore()
	if err != nil {
		return checks, ds, err
	}
	checks++
	if chaos != seq {
		ds = append(ds, Disagreement{Oracle: OracleFault,
			Detail: "retry-absorbed chaos run differs from the fault-free sequential stream:\n" + firstDiff(seq, chaos)})
	}

	// Phase 2: a permanent panic exhausts the retries; under the
	// continue policy it must surface as exactly one errored outcome.
	restore = faultinject.Plan{Faults: []faultinject.Fault{
		{Index: pIdx, Mode: faultinject.ModePanic},
	}}.Install()
	perm, _, err := collect("permanent failure", chaosOpt)
	restore()
	if err != nil {
		return checks, ds, err
	}
	checks++
	seqLines := strings.Split(seq, "\n")
	permLines := strings.Split(perm, "\n")
	if len(permLines) != len(seqLines) {
		ds = append(ds, Disagreement{Oracle: OracleFault,
			Detail: fmt.Sprintf("continue-policy run streamed %d outcomes, reference has %d", len(permLines)-1, len(seqLines)-1)})
	} else {
		for i, l := range permLines {
			switch {
			case i == pIdx:
				if !strings.Contains(l, "|err=true:") || strings.Contains(l, `|err=true:""`) {
					ds = append(ds, Disagreement{Oracle: OracleFault,
						Detail: fmt.Sprintf("permanently failing design #%d not streamed as an errored outcome with a message: %s", pIdx, l)})
				}
			case l != seqLines[i]:
				ds = append(ds, Disagreement{Oracle: OracleFault,
					Detail: fmt.Sprintf("unfaulted design line %d differs under the continue policy:\n-%s\n+%s", i, seqLines[i], l)})
			}
		}
	}

	// Phase 3: the fault is gone; resuming over phase 2's manifest must
	// converge to the reference, touching only the failed design.
	mu := &sync.Mutex{}
	calls := map[string]int{}
	resOpt := base
	resOpt.Workers = 4
	resOpt.Resume = true
	resOpt.CacheDir = dir
	resOpt.NewVerifier = func() eval.Verifier {
		return countingVerifier{inner: eval.NewEngineVerifier(), mu: mu, calls: calls}
	}
	resumed, _, err := collect("resume", resOpt)
	if err != nil {
		return checks, ds, err
	}
	checks++
	if resumed != seq {
		ds = append(ds, Disagreement{Oracle: OracleFault,
			Detail: "resumed run differs from the fault-free sequential stream:\n" + firstDiff(seq, resumed)})
	}
	checks++
	for i, d := range corpus {
		c := calls[d.Name]
		if i == pIdx && c == 0 {
			ds = append(ds, Disagreement{Oracle: OracleFault,
				Detail: fmt.Sprintf("resume never re-verified the previously failed design #%d (%s)", i, d.Name)})
		}
		if i != pIdx && c > 0 {
			ds = append(ds, Disagreement{Oracle: OracleFault,
				Detail: fmt.Sprintf("resume re-verified manifest-decided design #%d (%s) %d times — the run manifest was not honored", i, d.Name, c)})
		}
	}
	return checks, ds, nil
}
