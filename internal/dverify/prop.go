package dverify

import (
	"fmt"
	"math/rand"
	"strings"

	"assertionbench/internal/verilog"
)

// The random property generator. Properties are built over a design's
// elaborated nets so every generated assertion compiles against the
// netlist by construction; what the oracles then cross-check is whether
// the verdict machinery (monitor, simulator, FPV engine) agrees about it.

// propNet is one referenceable net: a simple (non-hierarchical, non-clock)
// signal with its width and role.
type propNet struct {
	name  string
	width int
	isReg bool
	isIn  bool
}

func propNets(nl *verilog.Netlist) []propNet {
	var out []propNet
	for _, n := range nl.Nets {
		if n.IsClock || strings.Contains(n.Name, ".") {
			continue
		}
		out = append(out, propNet{name: n.Name, width: n.Width, isReg: n.IsReg, isIn: n.IsInput})
	}
	return out
}

// genProps produces count deterministic property texts over the netlist,
// in the native SVA surface syntax. Returns nil when the design exposes
// no usable nets (cannot happen for the generator families).
func genProps(nl *verilog.Netlist, seed int64, count int) []string {
	nets := propNets(nl)
	if len(nets) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, genProp(rng, nets))
	}
	return out
}

// genProp emits one property: a 1-2 step antecedent, an implication, and
// a 1-2 step consequent with an optional lead delay or ##[m:n] range.
// Delays are kept small so the monitor window stays tiny compared to the
// 64-cycle limit. About a quarter of properties use likely-true shapes
// (identity implications, tautological consequents, reset properties) so
// the proof-side oracles — trace-vs-proven and bounded-vs-vacuous — see
// real Proven verdicts routinely, not just counter-examples.
func genProp(rng *rand.Rand, nets []propNet) string {
	if rng.Intn(8) == 0 {
		if p := genStaticProp(rng, nets); p != "" {
			return p
		}
	}
	if rng.Intn(4) == 0 {
		if p := genLikelyTrueProp(rng, nets); p != "" {
			return p
		}
	}
	var sb strings.Builder
	// Antecedent.
	sb.WriteString(atom(rng, nets, 1))
	if rng.Intn(3) == 0 {
		fmt.Fprintf(&sb, " ##%d %s", 1+rng.Intn(2), atom(rng, nets, 1))
	}
	// Implication.
	if rng.Intn(3) == 0 {
		sb.WriteString(" |=> ")
	} else {
		sb.WriteString(" |-> ")
	}
	// Consequent: ranged, delayed, or multi-step.
	switch rng.Intn(4) {
	case 0:
		lo := rng.Intn(2)
		fmt.Fprintf(&sb, "##[%d:%d] %s", lo, lo+1+rng.Intn(2), atom(rng, nets, 1))
	case 1:
		fmt.Fprintf(&sb, "##%d %s", 1+rng.Intn(2), atom(rng, nets, 1))
	case 2:
		fmt.Fprintf(&sb, "%s ##%d %s", atom(rng, nets, 1), 1+rng.Intn(2), atom(rng, nets, 1))
	default:
		sb.WriteString(atom(rng, nets, 1))
	}
	return sb.String()
}

// genLikelyTrueProp emits a property that usually holds: an identity
// implication, a tautological consequent, or a reset-clears-register
// property (reset-like inputs clear state in most generator families).
// Truth is not assumed anywhere — a family that violates the shape (the
// LFSR resets to 1, the reset synchronizer shifts its "reset" in) just
// contributes a counter-example instead of a proof.
func genLikelyTrueProp(rng *rand.Rand, nets []propNet) string {
	switch rng.Intn(3) {
	case 0: // identity: the same proposition implies itself, same cycle
		a := atom(rng, nets, 0)
		return fmt.Sprintf("%s |-> %s", a, a)
	case 1: // tautological consequent
		n := nets[rng.Intn(len(nets))]
		return fmt.Sprintf("%s |-> %s == %s", atom(rng, nets, 1), n.name, n.name)
	default: // reset clears a register
		var rst *propNet
		for i, n := range nets {
			if n.isIn && n.width == 1 && isResetLikeName(n.name) {
				rst = &nets[i]
				break
			}
		}
		var regs []propNet
		for _, n := range nets {
			if n.isReg {
				regs = append(regs, n)
			}
		}
		if rst == nil || len(regs) == 0 {
			return ""
		}
		guard := rst.name
		if strings.HasSuffix(rst.name, "_n") {
			guard = "!" + rst.name
		}
		r := regs[rng.Intn(len(regs))]
		return fmt.Sprintf("%s |=> %s == %d'd0", guard, r.name, r.width)
	}
}

// genStaticProp emits a property the abstract interpreter can decide
// without search: a compare against a bare literal beyond the signal's
// value range folds to a constant in the ternary lattice. A tautological
// antecedent and consequent yield a static proof, an impossible
// antecedent a static vacuity, and an impossible consequent a static
// refutation (which the engine must concretize into a replayable
// counter-example or fall through to search). These shapes keep dverify
// oracle 8's discharge paths — not just its fall-through path —
// routinely exercised.
func genStaticProp(rng *rand.Rand, nets []propNet) string {
	var ok []propNet
	for _, n := range nets {
		if n.width <= 30 {
			ok = append(ok, n)
		}
	}
	if len(ok) == 0 {
		return ""
	}
	pick := func() propNet { return ok[rng.Intn(len(ok))] }
	// over is strictly above every representable value of the net, so
	// cmpTruth/eqTruth fold the compare regardless of the net's dynamics.
	over := func(n propNet) int { return (1 << uint(n.width)) + rng.Intn(7) }
	taut := func(n propNet) string {
		if rng.Intn(2) == 0 {
			return fmt.Sprintf("%s != %d", n.name, over(n))
		}
		return fmt.Sprintf("%s <= %d", n.name, over(n))
	}
	contra := func(n propNet) string {
		if rng.Intn(2) == 0 {
			return fmt.Sprintf("%s == %d", n.name, over(n))
		}
		return fmt.Sprintf("%s > %d", n.name, over(n))
	}
	impl := " |-> "
	if rng.Intn(3) == 0 {
		impl = " |=> "
	}
	switch rng.Intn(3) {
	case 0: // statically proven: every step a tautology
		return taut(pick()) + impl + taut(pick())
	case 1: // statically vacuous: the antecedent can never hold
		return contra(pick()) + impl + atom(rng, nets, 1)
	default: // statically refuted: the consequent can never hold
		ante := atom(rng, nets, 1)
		if rng.Intn(2) == 0 {
			// A tautological antecedent fires on the zero-stimulus
			// trajectory, so the static pass fabricates the CEX itself.
			ante = taut(pick())
		}
		return ante + impl + contra(pick())
	}
}

func isResetLikeName(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "rst") || strings.Contains(l, "reset") || strings.Contains(l, "clear")
}

// atom emits one boolean proposition over a random net. depth>0 allows
// one level of &&/|| composition.
func atom(rng *rand.Rand, nets []propNet, depth int) string {
	if depth > 0 && rng.Intn(4) == 0 {
		op := "&&"
		if rng.Intn(2) == 0 {
			op = "||"
		}
		return fmt.Sprintf("(%s %s %s)", atom(rng, nets, depth-1), op, atom(rng, nets, depth-1))
	}
	n := nets[rng.Intn(len(nets))]
	cw := n.width
	if cw > 6 {
		cw = 6
	}
	konst := rng.Intn(1 << uint(cw))
	switch rng.Intn(9) {
	case 0:
		return fmt.Sprintf("%s == %d'd%d", n.name, n.width, konst)
	case 1:
		return fmt.Sprintf("%s != %d'd%d", n.name, n.width, konst)
	case 2:
		if n.width > 1 {
			return fmt.Sprintf("%s >= %d'd%d", n.name, n.width, konst)
		}
		return n.name
	case 3:
		if n.width > 1 {
			return fmt.Sprintf("%s[%d]", n.name, rng.Intn(n.width))
		}
		return "!" + n.name
	case 4:
		if rng.Intn(2) == 0 {
			return "|" + n.name
		}
		return "&" + n.name
	case 5:
		return fmt.Sprintf("$rose(%s)", n.name)
	case 6:
		return fmt.Sprintf("$fell(%s)", n.name)
	case 7:
		return fmt.Sprintf("$stable(%s)", n.name)
	default:
		return fmt.Sprintf("$past(%s) == %s", n.name, n.name)
	}
}
