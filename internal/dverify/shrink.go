package dverify

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
)

// shrink greedily minimizes a disagreement's design genome: it tries each
// candidate from FuzzSpec.Shrink (same property seed, so the property
// stream regenerates against the smaller design) and descends into the
// first candidate that still trips the same oracle, until no candidate
// does or the step budget runs out. Determinism findings are corpus-level
// and are not shrunk.
func (h *harness) shrink(ctx context.Context, d Disagreement, propSeed int64) Disagreement {
	if d.Oracle == OracleDeterminism {
		return d
	}
	cur := d
	for step := 0; step < h.opt.MaxShrinkSteps; step++ {
		if ctx.Err() != nil {
			return cur
		}
		improved := false
		for _, cand := range cur.Spec.Shrink() {
			res := h.checkScenario(ctx, cand, propSeed)
			if dd, ok := firstOfOracle(res.disagreements, cur.Oracle); ok {
				cur = dd
				improved = true
				break
			}
		}
		if !improved {
			return cur
		}
	}
	return cur
}

func firstOfOracle(ds []Disagreement, o Oracle) (Disagreement, bool) {
	for _, d := range ds {
		if d.Oracle == o {
			return d, true
		}
	}
	return Disagreement{}, false
}

// dump writes the reproduction files for a disagreement: the generated
// design as .v, the property as .sva, and the full finding as .txt.
// Returns the base path ("" when dumping is disabled).
func (h *harness) dump(d Disagreement, idx int) (string, error) {
	if h.opt.DumpDir == "" {
		return "", nil
	}
	if err := os.MkdirAll(h.opt.DumpDir, 0o755); err != nil {
		return "", fmt.Errorf("dverify: dump dir: %w", err)
	}
	base := filepath.Join(h.opt.DumpDir, fmt.Sprintf("disagree_%03d_%s", idx, d.Oracle))
	if d.Spec.Family != "" {
		design := d.Spec.Build()
		if err := os.WriteFile(base+".v", []byte(design.Source), 0o644); err != nil {
			return "", fmt.Errorf("dverify: dump: %w", err)
		}
	}
	if d.Property != "" {
		sva := fmt.Sprintf("// repro for %s disagreement on spec %s\n%s;\n", d.Oracle, d.Spec, d.Property)
		if err := os.WriteFile(base+".sva", []byte(sva), 0o644); err != nil {
			return "", fmt.Errorf("dverify: dump: %w", err)
		}
	}
	txt := fmt.Sprintf("oracle: %s\nspec: %s\nproperty: %s\ndetail:\n%s\n", d.Oracle, d.Spec, d.Property, d.Detail)
	if err := os.WriteFile(base+".txt", []byte(txt), 0o644); err != nil {
		return "", fmt.Errorf("dverify: dump: %w", err)
	}
	return base, nil
}
