package dverify

import (
	"context"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"assertionbench/internal/astore"
	"assertionbench/internal/bench"
	"assertionbench/internal/eval"
	"assertionbench/internal/fpv"
	"assertionbench/internal/sva"
	"assertionbench/internal/verilog"
)

// The CI seed-matrix job varies this flag so three independent seeds run
// under the race detector (see .github/workflows/ci.yml).
var selfCheckSeed = flag.Int64("selfcheck-seed", 1, "seed for TestSelfCheckShortMode")

func TestSelfCheckShortMode(t *testing.T) {
	opt := Options{Scenarios: 25, PropsPerDesign: 2, Seed: *selfCheckSeed,
		TraceCount: 1, TraceCycles: 24, MaxShrinkSteps: 8}
	report, err := Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if report.Scenarios != 25 || report.Properties != 50 {
		t.Fatalf("report counts wrong: %s", report)
	}
	if !report.OK() {
		for _, d := range report.Disagreements {
			t.Errorf("disagreement: %s", d)
		}
	}
	if report.DeterminismRuns != 4 {
		t.Errorf("determinism runs = %d, want 4", report.DeterminismRuns)
	}
	if report.SchedChecks != 3 {
		t.Errorf("sched checks = %d, want 3", report.SchedChecks)
	}
}

func TestRunDeterministicReport(t *testing.T) {
	opt := Options{Scenarios: 8, PropsPerDesign: 2, Seed: 42, TraceCount: 1,
		TraceCycles: 16, SkipDeterminism: true}
	a, err := Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same options, different reports:\n%s\n%s", a, b)
	}
}

// TestMutatedMonitorIsCaught is the harness's own mutation test: a
// deliberately injected monitor bug (violations silently swallowed) must
// be caught by oracle 2 — the FPV engine still finds counter-examples,
// and their simulator replays no longer observe the violation.
func TestMutatedMonitorIsCaught(t *testing.T) {
	orig := monitorStep
	defer func() { monitorStep = orig }()
	monitorStep = func(m *sva.Monitor, hist [][]uint64) sva.Outcome {
		out := m.Step(hist)
		out.Violated = false // the injected bug: drop every violation
		return out
	}
	report, err := Run(context.Background(), Options{
		// The early seed-1 scenarios are CEX-dense and every CEX replay
		// trips this mutation (across several oracles), so a couple of
		// scenarios suffice — and every finding pays a shrink pass, so
		// more would just burn time.
		Scenarios: 2, PropsPerDesign: 3, Seed: 1, TraceCount: 1,
		TraceCycles: 16, MaxShrinkSteps: 2, SkipDeterminism: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	caught := 0
	for _, d := range report.Disagreements {
		if d.Oracle == OracleAgreement && strings.Contains(d.Detail, "does not violate the monitor") {
			caught++
		}
	}
	if caught == 0 {
		t.Fatalf("injected monitor bug was not caught by oracle 2; report: %s", report)
	}
}

// A second mutation: violations reported one attempt too old must trip
// the exact-cycle replay check.
func TestMutatedViolationAgeIsCaught(t *testing.T) {
	orig := monitorStep
	defer func() { monitorStep = orig }()
	monitorStep = func(m *sva.Monitor, hist [][]uint64) sva.Outcome {
		out := m.Step(hist)
		if out.Violated {
			out.ViolatedAge++
		}
		return out
	}
	report, err := Run(context.Background(), Options{
		// Same scenario economics as TestMutatedMonitorIsCaught above.
		Scenarios: 2, PropsPerDesign: 3, Seed: 1, TraceCount: 1,
		TraceCycles: 16, MaxShrinkSteps: 2, SkipDeterminism: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	caught := false
	for _, d := range report.Disagreements {
		if d.Oracle == OracleAgreement && strings.Contains(d.Detail, "replays at cycle") {
			caught = true
		}
	}
	if !caught {
		t.Fatalf("injected attempt-age bug was not caught; report: %s", report)
	}
}

func TestShrinkProducesMinimalRepro(t *testing.T) {
	// Force a disagreement via the mutated monitor and verify the shrunk
	// genome still reproduces it and is no larger than the original.
	orig := monitorStep
	defer func() { monitorStep = orig }()
	monitorStep = func(m *sva.Monitor, hist [][]uint64) sva.Outcome {
		out := m.Step(hist)
		out.Violated = false
		return out
	}
	h := &harness{opt: Options{PropsPerDesign: 3, TraceCount: 1, TraceCycles: 16, MaxShrinkSteps: 16}.withDefaults()}
	spec := bench.FuzzSpec{Family: "mixed", A: 6, B: 4, Seed: 99}
	res := h.checkScenario(context.Background(), spec, 7)
	if len(res.disagreements) == 0 {
		t.Skip("mutation did not trip on this genome (no CEX among generated properties)")
	}
	d := res.disagreements[0]
	shrunk := h.shrink(context.Background(), d, 7)
	if shrunk.Spec.A > spec.A || shrunk.Spec.B > spec.B {
		t.Errorf("shrink grew the genome: %s -> %s", spec, shrunk.Spec)
	}
	// The shrunk genome must still reproduce under the same prop seed.
	again := h.checkScenario(context.Background(), shrunk.Spec, 7)
	if _, ok := firstOfOracle(again.disagreements, shrunk.Oracle); !ok {
		t.Errorf("shrunk spec %s does not reproduce the disagreement", shrunk.Spec)
	}
}

func TestDumpWritesReproPair(t *testing.T) {
	dir := t.TempDir()
	h := &harness{opt: Options{DumpDir: dir}.withDefaults()}
	d := Disagreement{
		Oracle:   OracleAgreement,
		Spec:     bench.FuzzSpec{Family: "counter", A: 2},
		Property: "en |-> ##1 tc",
		Detail:   "synthetic",
	}
	base, err := h.dump(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	v, err := os.ReadFile(base + ".v")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verilog.Parse(string(v)); err != nil {
		t.Errorf("dumped design does not parse: %v", err)
	}
	svaText, err := os.ReadFile(base + ".sva")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(svaText), d.Property) {
		t.Errorf("dumped .sva missing property: %q", svaText)
	}
	if _, err := os.Stat(filepath.Join(dir, "disagree_003_agreement.txt")); err != nil {
		t.Errorf("missing .txt repro: %v", err)
	}
}

func TestGeneratedPropertiesCompile(t *testing.T) {
	// Every generated property must parse and compile against its design:
	// that is the generator contract the agreement oracle relies on.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 40; i++ {
		spec := bench.RandomFuzzSpec(rng)
		d := spec.Build()
		nl, err := verilog.ElaborateSource(d.Source, d.Name)
		if err != nil {
			t.Fatalf("spec %s does not elaborate: %v", spec, err)
		}
		for _, src := range genProps(nl, int64(i), 4) {
			a, err := sva.Parse(src)
			if err != nil {
				t.Fatalf("spec %s: property %q does not parse: %v", spec, src, err)
			}
			if _, err := sva.Compile(a, nl); err != nil {
				t.Fatalf("spec %s: property %q does not compile: %v", spec, src, err)
			}
		}
	}
}

func TestCanceledRunSurfacesContextError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, Options{Scenarios: 4})
	if err == nil {
		t.Fatal("canceled run returned nil error")
	}
}

// TestMutatedConeVerifierIsCaught: a deliberately injected cone-path bug
// (counter-example stimulus zeroed — what an over-aggressive projection
// that cuts a driving input would record) must be caught by oracle 6's
// independent replay of every cone-side CEX on the full design.
func TestMutatedConeVerifierIsCaught(t *testing.T) {
	orig := coneVerify
	defer func() { coneVerify = orig }()
	coneVerify = func(e *fpv.Engine, ctx context.Context, nl *verilog.Netlist, c *sva.Compiled, opt fpv.Options) fpv.Result {
		r := orig(e, ctx, nl, c, opt)
		if r.Status == fpv.StatusCEX && len(r.CEX.Inputs) > 0 {
			// The injected bug: the witness stimulus loses every driving
			// input, as if the cone had cut a net the property depends on.
			cex := *r.CEX
			cex.Inputs = make([][]uint64, len(r.CEX.Inputs))
			for t := range cex.Inputs {
				cex.Inputs[t] = make([]uint64, len(r.CEX.Inputs[t]))
			}
			r.CEX = &cex
		}
		return r
	}
	report, err := Run(context.Background(), Options{
		// Every CEX-status property trips the replay check under this
		// mutation, and each finding pays a shrink pass, so a couple of
		// scenarios suffice.
		Scenarios: 2, PropsPerDesign: 2, Seed: 1, TraceCount: 1,
		TraceCycles: 16, MaxShrinkSteps: 2, SkipDeterminism: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	caught := 0
	for _, d := range report.Disagreements {
		if d.Oracle == OracleCone {
			caught++
		}
	}
	if caught == 0 {
		t.Fatalf("injected cone bug was not caught by oracle 6; report: %s", report)
	}
}

// TestMutatedSlicedVerifierIsCaught: a deliberately injected sliced-path
// bug (search depth off by one — the kind of drift a broken lane
// accumulation would produce) must be caught by oracle 7's full result
// comparison against the scalar reference.
func TestMutatedSlicedVerifierIsCaught(t *testing.T) {
	orig := slicedVerify
	defer func() { slicedVerify = orig }()
	slicedVerify = func(e *fpv.Engine, ctx context.Context, nl *verilog.Netlist, c *sva.Compiled, opt fpv.Options) fpv.Result {
		r := orig(e, ctx, nl, c, opt)
		if r.Status != fpv.StatusError {
			r.Depth++ // the injected bug: a skewed exploration depth
		}
		return r
	}
	report, err := Run(context.Background(), Options{
		// Every property trips the oracle under this mutation, and each
		// finding pays a shrink pass, so a couple of scenarios suffice.
		Scenarios: 2, PropsPerDesign: 2, Seed: 1, TraceCount: 1,
		TraceCycles: 16, MaxShrinkSteps: 2, SkipDeterminism: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	caught := 0
	for _, d := range report.Disagreements {
		if d.Oracle == OracleSliced && strings.Contains(d.Detail, "bit-sliced and scalar FPV disagree") {
			caught++
		}
	}
	if caught == 0 {
		t.Fatalf("injected sliced bug was not caught by oracle 7; report: %s", report)
	}
}

// TestMutatedStaticVerifierIsCaught: a deliberately injected static-pass
// bug (vacuity flipped on statically discharged verdicts — what an
// unsound abstract fixpoint would report) must be caught by oracle 8's
// semantic comparison against the pure-search reference.
func TestMutatedStaticVerifierIsCaught(t *testing.T) {
	orig := staticVerify
	defer func() { staticVerify = orig }()
	staticVerify = func(e *fpv.Engine, ctx context.Context, nl *verilog.Netlist, c *sva.Compiled, opt fpv.Options) fpv.Result {
		r := orig(e, ctx, nl, c, opt)
		if r.Static {
			r.NonVacuous = !r.NonVacuous // the injected bug: unsound discharge
		}
		return r
	}
	report, err := Run(context.Background(), Options{
		// Enough scenarios for the generator's statically-decidable arm
		// (~1 in 8 properties) to yield a proven or vacuous discharge,
		// which the deep-budget exhaustive comparison then contradicts.
		Scenarios: 8, PropsPerDesign: 3, Seed: 1, TraceCount: 1,
		TraceCycles: 16, MaxShrinkSteps: 2, SkipDeterminism: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.StaticDischarged == 0 {
		t.Fatalf("no property was statically discharged, the mutation never engaged; report: %s", report)
	}
	caught := 0
	for _, d := range report.Disagreements {
		if d.Oracle == OracleStatic {
			caught++
		}
	}
	if caught == 0 {
		t.Fatalf("injected static-pass bug was not caught by oracle 8; report: %s", report)
	}
}

// TestMutatedBatchVerifierIsCaught: a deliberately injected batched-path
// bug (bounded passes reported one state too high — the kind of drift a
// broken graph mirror would produce) must be caught by oracle 5's full
// result comparison against the per-property reference.
func TestMutatedBatchVerifierIsCaught(t *testing.T) {
	orig := batchVerify
	defer func() { batchVerify = orig }()
	batchVerify = func(e *fpv.Engine, ctx context.Context, nl *verilog.Netlist, cs []*sva.Compiled, opt fpv.Options) []fpv.Result {
		rs := orig(e, ctx, nl, cs, opt)
		for i := range rs {
			if rs[i].Status != fpv.StatusError {
				rs[i].States++ // the injected bug: a skewed exploration count
			}
		}
		return rs
	}
	report, err := Run(context.Background(), Options{
		// Every property trips the oracle under this mutation, and each
		// finding pays a shrink pass, so a couple of scenarios suffice.
		Scenarios: 2, PropsPerDesign: 2, Seed: 1, TraceCount: 1,
		TraceCycles: 16, MaxShrinkSteps: 2, SkipDeterminism: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	caught := 0
	for _, d := range report.Disagreements {
		if d.Oracle == OracleBatch && strings.Contains(d.Detail, "batched and per-property FPV disagree") {
			caught++
		}
	}
	if caught == 0 {
		t.Fatalf("injected batch bug was not caught by oracle 5; report: %s", report)
	}
}

// TestMutatedSchedulerIsCaught: a deliberately misrouted reorder buffer
// (two slots swapped via eval.SchedIndexHook — what a broken index
// mapping between dispatch order and corpus order would do) must be
// caught by oracle 10's byte comparison against the sequential walk. The
// swap is a bijection, so every slot still fills and the mutated runs
// complete; only the stream contents betray the bug.
func TestMutatedSchedulerIsCaught(t *testing.T) {
	eval.SchedIndexHook = func(i int) int {
		switch i {
		case 0:
			return 1
		case 1:
			return 0
		}
		return i
	}
	defer func() { eval.SchedIndexHook = nil }()
	report, err := Run(context.Background(), Options{
		// The scheduled-stream oracles need only a tiny corpus: any two
		// adjacent designs render differently, so the swap is visible on
		// the first line. Per-design oracles never touch the hook.
		Scenarios: 3, PropsPerDesign: 1, Seed: 1, TraceCount: 1,
		TraceCycles: 16, MaxShrinkSteps: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	caught := 0
	for _, d := range report.Disagreements {
		if d.Oracle == OracleSched {
			caught++
		}
	}
	if caught == 0 {
		t.Fatalf("injected reorder-buffer bug was not caught by oracle 10; report: %s", report)
	}
}

// TestCorruptedStoreBlobIsCaught: a blob-corrupting astore.LoadHook
// (well-formed payload, silently flipped sampled support values — what
// an undetected media error past the checksum would look like) must be
// caught by oracle 9's comparison against the store-free reference. The
// reference side never touches the store, so the corruption cannot
// cancel out of the comparison.
func TestCorruptedStoreBlobIsCaught(t *testing.T) {
	orig := astore.LoadHook
	defer func() { astore.LoadHook = orig }()
	astore.LoadHook = func(kind, key string, payload []byte) []byte {
		if kind != astore.KindGraph {
			return payload
		}
		g, ht, err := fpv.DecodeGraph(payload)
		if err != nil {
			return payload
		}
		for i := range g.Rows {
			g.Rows[i] ^= 1
		}
		return fpv.EncodeGraph(g, ht)
	}
	report, err := Run(context.Background(), Options{
		// The corruption skews every sampled support value the warm side
		// evaluates, so a handful of scenarios suffice for a verdict or
		// state-count mismatch at one of the budgets.
		Scenarios: 4, PropsPerDesign: 2, Seed: 1, TraceCount: 1,
		TraceCycles: 16, MaxShrinkSteps: 2, SkipDeterminism: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.StoreLoads == 0 {
		t.Fatalf("no blob was served from disk, the corruption never engaged; report: %s", report)
	}
	caught := 0
	for _, d := range report.Disagreements {
		if d.Oracle == OracleStore {
			caught++
		}
	}
	if caught == 0 {
		t.Fatalf("injected store corruption was not caught by oracle 9; report: %s", report)
	}
}

// TestDroppedRetryIsCaught: a retry layer that silently gives up
// (eval.RetryDropHook discarding every re-attempt — what a broken
// transient classification or an off-by-one retry bound would do) must
// be caught by oracle 11's phase-1 comparison: the chaos run's bounded
// transient faults are no longer absorbed, so a design streams errored
// where the fault-free reference has verdicts.
func TestDroppedRetryIsCaught(t *testing.T) {
	eval.RetryDropHook = func(index, attempt int) bool { return true }
	defer func() { eval.RetryDropHook = nil }()
	report, err := Run(context.Background(), Options{
		// The fault oracle needs only a tiny corpus: it places its three
		// faults by seed and compares whole streams, so the first dropped
		// retry is visible immediately. Per-design oracles never retry.
		Scenarios: 3, PropsPerDesign: 1, Seed: 1, TraceCount: 1,
		TraceCycles: 16, MaxShrinkSteps: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	caught := 0
	for _, d := range report.Disagreements {
		if d.Oracle == OracleFault {
			caught++
		}
	}
	if caught == 0 {
		t.Fatalf("dropped retries were not caught by oracle 11; report: %s", report)
	}
}

// TestDroppedManifestEntryIsCaught: a run manifest that silently loses
// entries (eval.ManifestDropHook discarding every record — what a
// failed write-behind or a key mismatch would look like) must be caught
// by oracle 11's verify-call accounting: the resume re-verifies designs
// the manifest should have decided. Stream comparison alone cannot see
// this — re-verification reproduces the same verdicts — which is
// exactly why the oracle counts verifier calls.
func TestDroppedManifestEntryIsCaught(t *testing.T) {
	eval.ManifestDropHook = func(index int) bool { return true }
	defer func() { eval.ManifestDropHook = nil }()
	report, err := Run(context.Background(), Options{
		Scenarios: 3, PropsPerDesign: 1, Seed: 1, TraceCount: 1,
		TraceCycles: 16, MaxShrinkSteps: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	caught := 0
	for _, d := range report.Disagreements {
		if d.Oracle == OracleFault {
			caught++
		}
	}
	if caught == 0 {
		t.Fatalf("dropped manifest entries were not caught by oracle 11; report: %s", report)
	}
}
