// Package dverify is the differential verification harness: a generative
// self-check of the stack every evaluation verdict depends on. It draws
// seeded random well-formed designs from the corpus generator families
// (bench.FuzzSpec), seeded random SVA properties over each design's nets,
// and cross-checks eleven independent oracles:
//
//  1. print/parse round-trip — every generated design must survive
//     verilog.PrintFile -> Lex -> Parse -> Elaborate with a structurally
//     identical netlist (Netlist.Signature equality);
//  2. sim vs monitor vs FPV — the SVA monitor's verdict over simulated
//     traces must agree with the FPV engine's exhaustive verdict,
//     counter-examples must replay on the event-driven simulator at the
//     reported cycle, and bounded-mode FPV must never contradict
//     exhaustive mode;
//  3. determinism — the same seed must produce byte-identical
//     eval.Stream outcomes across sequential, parallel and sharded runs
//     over the generated corpus;
//  4. backend — the compiled register machine must agree bit for bit
//     with the tree-walking interpreter (OracleBackend);
//  5. batch — the batched shared-reachability verifier must reproduce
//     the per-property search field for field (OracleBatch);
//  6. cone — cone-of-influence-reduced FPV must agree semantically with
//     the full-design search, counter-examples included (OracleCone);
//  7. sliced — 64-way bit-sliced bounded exploration must reproduce the
//     scalar loops field for field (OracleSliced);
//  8. static — FPV with the static pre-verification pass (abstract-
//     interpretation discharge + constant-swept cones) must agree
//     semantically with the pure-search reference, statically produced
//     counter-examples included (OracleStatic);
//  9. store — FPV served from the persistent artifact store (programs
//     and reachability graphs round-tripped through internal/astore
//     blobs and read back by a fresh cache) must reproduce the
//     store-free search field for field (OracleStore);
//  10. sched — the cost-model work-stealing dispatcher and the contiguous
//     baseline must reproduce the sequential eval.Stream byte for byte,
//     sharded concatenation included (OracleSched);
//  11. fault — under deterministic injected faults, retries must absorb
//     bounded transient failures invisibly, a permanent failure under
//     the continue policy must surface as exactly one errored outcome
//     at its corpus position, and a resumed run must serve every
//     manifest-decided design without re-verification while converging
//     field for field to the fault-free sequential stream (OracleFault).
//
// A disagreement is shrunk (over the design genome) to a minimal
// reproduction and optionally dumped as a .v/.sva pair. The public facade
// is assertionbench.SelfCheck; the CLI is cmd/fuzzcheck.
package dverify

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"assertionbench/internal/astore"
	"assertionbench/internal/bench"
)

// Options configure one self-check run.
type Options struct {
	// Scenarios is the number of generated designs (default 50).
	Scenarios int
	// PropsPerDesign is the number of random properties checked against
	// each design (default 3).
	PropsPerDesign int
	// Seed drives design and property generation; a run is a pure
	// function of (Options, code under test). Default 1.
	Seed int64
	// DumpDir receives .v/.sva reproduction pairs for every disagreement
	// ("" disables dumping).
	DumpDir string
	// TraceCount and TraceCycles bound the random simulation traces fed
	// to the monitor per property (defaults 3 and 48).
	TraceCount  int
	TraceCycles int
	// MaxShrinkSteps bounds the shrink loop per disagreement (default 64).
	MaxShrinkSteps int
	// SkipDeterminism disables the whole-corpus eval.Stream oracles —
	// 3 (determinism), 10 (sched) and 11 (fault) — for callers that only
	// want the per-design oracles.
	SkipDeterminism bool
}

func (o Options) withDefaults() Options {
	if o.Scenarios == 0 {
		o.Scenarios = 50
	}
	if o.PropsPerDesign == 0 {
		o.PropsPerDesign = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.TraceCount == 0 {
		o.TraceCount = 3
	}
	if o.TraceCycles == 0 {
		o.TraceCycles = 48
	}
	if o.MaxShrinkSteps == 0 {
		o.MaxShrinkSteps = 64
	}
	return o
}

// Oracle identifies which cross-check a disagreement came from.
type Oracle string

// Oracles.
const (
	OracleRoundTrip   Oracle = "roundtrip"
	OracleAgreement   Oracle = "agreement"
	OracleDeterminism Oracle = "determinism"
	// OracleBackend cross-checks the compiled register-machine backend
	// against the tree-walking interpreter: simulators must track each
	// other bit for bit along random runs, monitors must flag identical
	// violations over identical traces, and FPV verdicts (every result
	// field, down to the CEX stimulus) must be identical per seed.
	OracleBackend Oracle = "backend"
	// OracleBatch cross-checks the batched verifier (shared reachability
	// graph + shared hunt traces, fpv.VerifyBatch) against the
	// per-property reference search: every result field, down to the CEX
	// stimulus, must be identical per seed at both the deep and the
	// starved budget, and batched counter-examples must replay on the
	// simulator.
	OracleBatch Oracle = "batch"
	// OracleCone cross-checks cone-of-influence-reduced FPV against the
	// full-design search. The reduction changes the explored space, so
	// the contract is semantic agreement rather than field identity:
	// exhaustive verdicts must coincide, bounded findings must not
	// contradict exhaustive ones, the reduced search must close whenever
	// the full one does, and every counter-example from either side must
	// replay on the full design.
	OracleCone Oracle = "cone"
	// OracleSliced cross-checks the 64-way bit-sliced bounded
	// exploration against the scalar reference loops: every result
	// field, down to the CEX stimulus, must be identical per seed at
	// both budgets.
	OracleSliced Oracle = "sliced"
	// OracleStatic cross-checks FPV with the static pre-verification pass
	// (vstatic abstract interpretation: property discharge before search
	// plus constant-swept cone projections) against the pure-search
	// reference (Static=off). The pass changes what gets searched — and a
	// discharged property is never searched at all — so the contract is
	// semantic agreement rather than field identity: a pure search that
	// closes exhaustively forces the static side to close too, two
	// exhaustive verdicts must name the same status and vacuity, bounded
	// findings must not contradict exhaustive verdicts from the other
	// side, and every counter-example — including the zero-stimulus
	// witnesses the static pass fabricates without any search — must
	// replay on the simulator at the reported cycle.
	OracleStatic Oracle = "static"
	// OracleStore cross-checks FPV served from the persistent artifact
	// store against a store-free reference: the compiled execution
	// program must survive an encode/Put/Get/decode round trip byte for
	// byte and be adopted by a fresh elaboration of the same source, and
	// a batch verified through a cold memory cache over a populated disk
	// store — every graph it touches a disk read — must reproduce the
	// store-free search's results field for field, down to the CEX
	// stimulus, with counter-examples independently replayed on the
	// simulator. The mutation seam is astore.LoadHook: a corrupting hook
	// behind the checksum must surface as a disagreement here.
	OracleStore Oracle = "store"
	// OracleSched cross-checks the cost-model work-stealing dispatcher
	// (eval.DispatchCost, the default) and the contiguous-partition
	// baseline (eval.DispatchContiguous) against the sequential
	// reference walk: at the same seed the rendered outcome streams must
	// be byte-identical whatever the dispatch order, and concatenating
	// sharded cost-dispatched streams must reproduce the unsharded one.
	// The in-order reorder buffer is what this oracle pins down; its
	// mutation seam is eval.SchedIndexHook — a hook that misroutes two
	// buffer slots must surface as a disagreement here.
	OracleSched Oracle = "sched"
	// OracleFault cross-checks the fault-tolerance layer against the
	// fault-free sequential reference under deterministic injected
	// faults (internal/faultinject): a chaos run whose transient faults
	// all fit inside the retry budget must be byte-identical to the
	// reference; a permanently failing design under ErrorPolicyContinue
	// must stream as exactly one errored outcome at its corpus position
	// with every other design untouched; and resuming that run after the
	// fault clears must converge to the reference with zero verifier
	// calls on manifest-decided designs (counted through a wrapping
	// verifier). The mutation seams are eval.RetryDropHook (a dropped
	// retry must surface here) and eval.ManifestDropHook (a skipped
	// manifest entry must surface through the verify-call count).
	OracleFault Oracle = "fault"
)

// Disagreement is one oracle violation, shrunk to a minimal genome.
type Disagreement struct {
	Oracle Oracle
	// Spec is the (shrunk) design genome that reproduces the finding.
	Spec bench.FuzzSpec
	// Property is the assertion text involved ("" for design-level
	// findings such as round-trip failures).
	Property string
	// Detail is a human-readable description of the contradiction.
	Detail string
	// DumpPath is the reproduction file pair's base path ("" if dumping
	// was disabled).
	DumpPath string
}

func (d Disagreement) String() string {
	s := fmt.Sprintf("[%s]", d.Oracle)
	if d.Spec.Family != "" {
		s += fmt.Sprintf(" spec %s", d.Spec)
	}
	if d.Property != "" {
		s += fmt.Sprintf(" property %q", d.Property)
	}
	s += ": " + d.Detail
	if d.DumpPath != "" {
		s += " (repro at " + d.DumpPath + ")"
	}
	return s
}

// Report summarizes one self-check run.
type Report struct {
	// Scenarios is the number of designs generated and checked.
	Scenarios int
	// Properties is the number of (design, property) pairs checked.
	Properties int
	// Exhaustive counts properties whose reference verdict was an
	// exhaustive (closed product space) FPV run.
	Exhaustive int
	// CEXs counts counter-example verdicts replayed on the simulator.
	CEXs int
	// RefStatus tallies the reference engine's verdicts by status name
	// (proven/vacuous/bounded_pass/cex) — the denominator context for
	// Exhaustive: cex verdicts are definitive and replay-checked, so only
	// the bounded_pass share is outside the strong oracles' reach.
	RefStatus map[string]int
	// DeterminismRuns counts the eval.Stream configurations compared.
	DeterminismRuns int
	// BackendChecks counts compiled-vs-interpreted comparisons (lockstep
	// simulator runs, monitor trace checks, full FPV verdicts).
	BackendChecks int
	// BatchChecks counts batched-vs-per-property FPV result comparisons
	// (oracle 5).
	BatchChecks int
	// ConeChecks counts cone-reduced-vs-full-design FPV comparisons
	// (oracle 6).
	ConeChecks int
	// SlicedChecks counts bit-sliced-vs-scalar FPV result comparisons
	// (oracle 7).
	SlicedChecks int
	// StaticChecks counts static-pass-vs-pure-search FPV comparisons
	// (oracle 8); StaticDischarged counts how many of those the static
	// side settled without any search.
	StaticChecks     int
	StaticDischarged int
	// StoreChecks counts disk-served-vs-store-free FPV comparisons
	// (oracle 9); StoreLoads counts the blobs the warm runs actually
	// served from disk — zero loads would mean the oracle compared two
	// in-memory runs and proved nothing about the store.
	StoreChecks int
	StoreLoads  int
	// SchedChecks counts the dispatch-mode stream comparisons (oracle
	// 10): cost-vs-sequential, contiguous-vs-sequential, and the sharded
	// cost-dispatched concatenation.
	SchedChecks int
	// FaultChecks counts the fault-tolerance comparisons (oracle 11):
	// retry-absorbed chaos vs the fault-free reference, the
	// continue-policy errored stream, and the resumed run with its
	// verify-call accounting.
	FaultChecks int
	// Disagreements holds every oracle violation (empty on a clean run).
	Disagreements []Disagreement
}

// OK reports whether the run found no disagreements.
func (r Report) OK() bool { return len(r.Disagreements) == 0 }

func (r Report) String() string {
	return fmt.Sprintf("dverify: %d scenarios, %d properties (%d exhaustive, %d cex replayed, verdicts %s), %d backend checks, %d batch checks, %d cone checks, %d sliced checks, %d static checks (%d discharged), %d store checks (%d disk loads), %d determinism runs, %d sched checks, %d fault checks, %d disagreements",
		r.Scenarios, r.Properties, r.Exhaustive, r.CEXs, r.refStatusString(), r.BackendChecks, r.BatchChecks, r.ConeChecks, r.SlicedChecks, r.StaticChecks, r.StaticDischarged, r.StoreChecks, r.StoreLoads, r.DeterminismRuns, r.SchedChecks, r.FaultChecks, len(r.Disagreements))
}

// refStatusString renders the verdict tally in a fixed order.
func (r Report) refStatusString() string {
	parts := make([]string, 0, 4)
	for _, k := range []string{"proven", "vacuous", "bounded_pass", "cex"} {
		if n := r.RefStatus[k]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, n))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// Run executes the differential harness. The returned error reports
// harness-level failures only (cancellation, dump I/O); oracle
// disagreements are data, reported in the Report.
func Run(ctx context.Context, opt Options) (Report, error) {
	opt = opt.withDefaults()
	h := &harness{opt: opt}
	rng := rand.New(rand.NewSource(opt.Seed))
	report := Report{RefStatus: map[string]int{}}
	// Oracle 9 exercises a real on-disk store. It lives for the whole run
	// so shrink re-checks replay against the same blobs a full-size
	// scenario wrote.
	storeDir, err := os.MkdirTemp("", "dverify-store-")
	if err != nil {
		return report, fmt.Errorf("dverify: store dir: %w", err)
	}
	defer os.RemoveAll(storeDir)
	store, err := astore.Open(storeDir)
	if err != nil {
		return report, fmt.Errorf("dverify: store: %w", err)
	}
	h.store = store
	var corpus []bench.Design
	for i := 0; i < opt.Scenarios; i++ {
		if err := ctx.Err(); err != nil {
			return report, err
		}
		spec := bench.RandomFuzzSpec(rng)
		propSeed := rng.Int63()
		res := h.checkScenario(ctx, spec, propSeed)
		report.Scenarios++
		report.Properties += res.properties
		report.Exhaustive += res.exhaustive
		report.CEXs += res.cexs
		report.BackendChecks += res.backend
		report.BatchChecks += res.batch
		report.ConeChecks += res.cone
		report.SlicedChecks += res.sliced
		report.StaticChecks += res.static
		report.StaticDischarged += res.staticDischarged
		report.StoreChecks += res.store
		report.StoreLoads += res.storeLoads
		for k, v := range res.refStatus {
			report.RefStatus[k] += v
		}
		for _, d := range res.disagreements {
			d = h.shrink(ctx, d, propSeed)
			// Dump files are numbered by the global disagreement count, not
			// the scenario index: one scenario can trip several properties,
			// and each reproduction must survive on disk.
			if path, err := h.dump(d, len(report.Disagreements)); err != nil {
				return report, err
			} else {
				d.DumpPath = path
			}
			report.Disagreements = append(report.Disagreements, d)
		}
		// The determinism corpus reuses the scenarios already generated,
		// capped so oracle 3 stays a bounded fraction of the run.
		if len(corpus) < 24 {
			corpus = append(corpus, spec.Build())
		}
	}
	if !opt.SkipDeterminism && len(corpus) > 0 {
		runs, ds, err := h.checkDeterminism(ctx, corpus)
		if err != nil {
			return report, err
		}
		report.DeterminismRuns = runs
		report.Disagreements = append(report.Disagreements, ds...)
		checks, sds, err := h.checkSched(ctx, corpus)
		if err != nil {
			return report, err
		}
		report.SchedChecks = checks
		report.Disagreements = append(report.Disagreements, sds...)
		fchecks, fds, err := h.checkFault(ctx, corpus)
		if err != nil {
			return report, err
		}
		report.FaultChecks = fchecks
		report.Disagreements = append(report.Disagreements, fds...)
	}
	return report, nil
}
