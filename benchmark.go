package assertionbench

import (
	"context"
	"fmt"

	"assertionbench/internal/bench"
	"assertionbench/internal/eval"
	"assertionbench/internal/llm"
)

// Options configure benchmark loading.
type Options struct {
	// Seed drives mining, generation and evaluation determinism.
	// Default 1.
	Seed int64
	// MaxDesigns truncates the 100-design test corpus (0 = all).
	MaxDesigns int
	// Workers sets the evaluation worker-pool size used by the
	// Evaluate*/RunAll* conveniences (0 = GOMAXPROCS, 1 = sequential).
	Workers int
	// FinetuneEpochs for AssertionLLM construction (paper: 20).
	FinetuneEpochs int
}

// Benchmark is loaded AssertionBench: the five training designs with
// formally verified assertions (the in-context examples) and the test
// corpus. Loading mines and proves the examples, so it is the expensive
// step; a Benchmark is immutable afterwards and safe to share.
type Benchmark struct {
	exp *eval.Experiment
}

// Load builds AssertionBench: the five train designs are mined with the
// GOLDMINE- and HARM-style miners and their assertions formally verified
// (paper Sec. III). Cancelling ctx aborts mining with ctx.Err().
func Load(ctx context.Context, opt Options) (*Benchmark, error) {
	e, err := eval.NewExperiment(ctx, eval.ExperimentOptions{
		Seed:           opt.Seed,
		MaxDesigns:     opt.MaxDesigns,
		Workers:        opt.Workers,
		FinetuneEpochs: opt.FinetuneEpochs,
	})
	if err != nil {
		return nil, err
	}
	return &Benchmark{exp: e}, nil
}

// TrainDesigns returns the five ICL training designs.
func (b *Benchmark) TrainDesigns() []Design { return newDesigns(b.exp.Train) }

// Corpus returns the test designs.
func (b *Benchmark) Corpus() []Design { return newDesigns(b.exp.Corpus) }

// Examples returns the mined in-context examples.
func (b *Benchmark) Examples() []Example { return newExamples(b.exp.ICL) }

// TestCorpus returns the 100-design test corpus without loading the full
// benchmark (no mining) — for reports and tooling that only need the
// designs, not the in-context examples.
func TestCorpus() []Design { return newDesigns(bench.TestCorpus()) }

// TrainingDesigns returns the five training designs without loading the
// full benchmark.
func TrainingDesigns() []Design { return newDesigns(bench.TrainDesigns()) }

// TrainArbiter is the paper's Fig. 1 two-port arbiter source, the
// walkthrough design of Sec. II.
func TrainArbiter() Design {
	for _, d := range bench.TrainDesigns() {
		if d.Name == "arb2" {
			return newDesign(d)
		}
	}
	return Design{}
}

// SecurityDesigns returns the lock-gated benchmark designs used by the
// security-mining direction (paper Sec. X (iii)).
func SecurityDesigns() []Design { return newDesigns(bench.SecurityDesigns()) }

// GenerateAssertions runs one k-shot generation call against an arbitrary
// design source using the benchmark's mined examples — the paper's Fig. 4
// pipeline up to (not including) the corrector. Use CorrectAssertions for
// stage 3 and VerifyAssertions for stage 4.
func (b *Benchmark) GenerateAssertions(ctx context.Context, gen Generator, designSource string, shots int, seed int64) (GenOutput, error) {
	if shots < 1 || shots > len(b.exp.ICL) {
		return GenOutput{}, fmt.Errorf("assertionbench: shots must be in 1..%d", len(b.exp.ICL))
	}
	return gen.Generate(ctx, GenRequest{
		Design:   DesignFromSource("", designSource),
		Examples: newExamples(b.exp.ICL[:shots]),
		Shots:    shots,
		Seed:     seed,
	})
}

// EvaluateCOTS evaluates one COTS profile at one shot count with the full
// Fig. 4 pipeline (corrector on) over the corpus.
func (b *Benchmark) EvaluateCOTS(ctx context.Context, p Profile, shots int) (RunResult, error) {
	r, err := b.exp.RunCOTS(ctx, profileInternal(p), shots)
	return newRunResult(r), err
}

// RunAllCOTS produces the Fig. 6 / Fig. 7 grid: every COTS profile at 1-
// and 5-shot.
func (b *Benchmark) RunAllCOTS(ctx context.Context) ([]RunResult, error) {
	rs, err := b.exp.RunAllCOTS(ctx)
	if err != nil {
		return nil, err
	}
	return newRunResults(rs), nil
}

// FinetuneReport summarizes AssertionLLM training.
type FinetuneReport struct {
	// PerplexityBefore/After on the held-out slice; Gain their ratio.
	PerplexityBefore float64
	PerplexityAfter  float64
	Gain             float64
	// PerEpoch is the held-out perplexity trajectory.
	PerEpoch []float64
}

func newFinetuneReport(r llm.FinetuneReport) FinetuneReport {
	return FinetuneReport{
		PerplexityBefore: r.PerplexityBefore,
		PerplexityAfter:  r.PerplexityAfter,
		Gain:             r.Gain,
		PerEpoch:         r.PerEpoch,
	}
}

// AssertionLLM fine-tunes the base profile on the mined 75% split of
// AssertionBench (paper Sec. VI) and returns the tuned model as a
// Generator, plus the training report.
func (b *Benchmark) AssertionLLM(ctx context.Context, base Profile) (Generator, FinetuneReport, error) {
	corpus, _, err := b.exp.FinetuneSplit(ctx)
	if err != nil {
		return nil, FinetuneReport{}, err
	}
	tuned, report := llm.Finetune(llm.New(profileInternal(base)), corpus, llm.FinetuneOptions{
		Epochs: b.exp.Opt.FinetuneEpochs,
		Seed:   b.exp.Opt.Seed,
	})
	return evalGenerator{g: eval.ModelGenerator{Model: tuned}}, newFinetuneReport(report), nil
}

// EvaluateFinetuned builds AssertionLLM from the base profile and
// evaluates it on the held-out 25% with the Fig. 8 pipeline (corrector
// removed).
func (b *Benchmark) EvaluateFinetuned(ctx context.Context, base Profile, shots int) (RunResult, FinetuneReport, error) {
	r, report, err := b.exp.FinetunedRun(ctx, profileInternal(base), shots)
	return newRunResult(r), newFinetuneReport(report), err
}

// RunAllFinetuned produces the Fig. 9 grid: AssertionLLM over CodeLLaMa 2
// and LLaMa3-70B at 1- and 5-shot.
func (b *Benchmark) RunAllFinetuned(ctx context.Context) ([]RunResult, error) {
	rs, err := b.exp.RunAllFinetuned(ctx)
	if err != nil {
		return nil, err
	}
	return newRunResults(rs), nil
}

// profileInternal unwraps a Profile for internal calls.
func profileInternal(p Profile) llm.Profile { return p.p }
