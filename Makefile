GO ?= go

.PHONY: check fmt vet build test bench race apicheck

check: fmt vet build test apicheck

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/eval/ ./internal/llm/ ./internal/bench/

# Build a tiny consumer program against the public package from a temp
# module outside the repo, so internal/ leakage into public signatures
# fails the build.
apicheck:
	sh scripts/apicheck.sh

bench:
	$(GO) test -bench=. -benchmem .
