GO ?= go

.PHONY: check fmt vet abenchvet build test bench bench-json race apicheck fuzz selfcheck

check: fmt vet abenchvet build test apicheck

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Project vet suite: determinism invariants (no math/rand, no time.Now,
# no map-order-dependent iteration) over the verification core.
abenchvet:
	$(GO) run ./cmd/abenchvet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The dverify suite under the race detector legitimately runs long —
# the backend, batch, cone, sliced and static oracles each re-verify
# every fuzzed property on two engine configurations (~38 min on the
# 1-CPU CI container) — hence the explicit timeout. CI's selfcheck
# matrix covers dverify-under-race per push; this target is the full
# local sweep.
race:
	$(GO) test -race -timeout 60m ./internal/eval/ ./internal/llm/ ./internal/bench/ ./internal/dverify/ ./internal/faultinject/

# Differential self-check: seeded design/property fuzzing with
# cross-engine oracles. SEED/N are overridable: make selfcheck SEED=7
selfcheck:
	$(GO) run ./cmd/fuzzcheck -n $(or $(N),200) -seed $(or $(SEED),1)

# go-native fuzzing smoke over the checked-in seed corpora.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParseVerilog -fuzztime 20s ./internal/verilog
	$(GO) test -run '^$$' -fuzz FuzzParseSVA -fuzztime 20s ./internal/sva

# Build a tiny consumer program against the public package from a temp
# module outside the repo, so internal/ leakage into public signatures
# fails the build.
apicheck:
	sh scripts/apicheck.sh

bench:
	$(GO) test -bench=. -benchmem .

# Disk-warm-vs-cold persistent store, static-vs-search, cone+sliced vs
# legacy, batched-vs-per-property and interp-vs-compiled measurements
# (sim ns/cycle, the FPV-bound full-corpus verification pass cold and
# warm with static and cone/sliced attribution plus the artifact-store
# disk columns, end-to-end eval wall time, and the cost-vs-contiguous
# dispatcher tail-latency comparison), written to the checked-in
# BENCH_pr9.json. QUICK=1 selects CI smoke sizes. The baseline is
# BENCH_pr8.json's batched cold fpv pass on the same host (see
# EXPERIMENTS.md).
bench-json:
	$(GO) run ./cmd/perfbench $(if $(QUICK),-quick) -baseline-ms 175.24 -out BENCH_pr9.json

# Merge every checked-in BENCH_pr*.json into one markdown trajectory
# table (cold/warm full-corpus pass and design p95 per PR).
bench-trend:
	sh scripts/benchtrend.sh
