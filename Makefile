GO ?= go

.PHONY: check fmt vet build test bench race

check: fmt vet build test

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/eval/ ./internal/llm/ ./internal/bench/

bench:
	$(GO) test -bench=. -benchmem .
