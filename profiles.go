package assertionbench

import (
	"assertionbench/internal/llm"
)

// Profile identifies one simulated model: the paper's Sec. IV decoding
// hyperparameters plus its calibrated error channels. Profiles are opaque
// handles — obtain them from ProfileByName, Profiles, or the named
// constructors, and pass them to NewModelGenerator or the fine-tuning
// APIs.
type Profile struct {
	p llm.Profile
}

// Name is the canonical model name (e.g. "GPT-4o").
func (p Profile) Name() string { return p.p.Name }

// Finetuned reports whether this is an AssertionLLM variant.
func (p Profile) Finetuned() bool { return p.p.Finetuned }

func (p Profile) String() string { return p.p.String() }

// ProfileByName resolves a model by canonical name or CLI alias
// ("gpt4o", "gpt-3.5", "codellama", "llama3-70b", ...). It is the single
// model-selection registry shared by every CLI; an unknown name errors
// with the full list of accepted spellings.
func ProfileByName(name string) (Profile, error) {
	p, err := llm.ProfileByName(name)
	if err != nil {
		return Profile{}, err
	}
	return Profile{p: p}, nil
}

// ProfileNames lists every accepted model spelling, for usage text.
func ProfileNames() []string { return llm.ProfileNames() }

// Profiles returns the paper's four COTS models in presentation order.
func Profiles() []Profile {
	cots := llm.COTSProfiles()
	out := make([]Profile, len(cots))
	for i, p := range cots {
		out[i] = Profile{p: p}
	}
	return out
}

// GPT35 is the GPT-3.5 profile.
func GPT35() Profile { return Profile{p: llm.GPT35()} }

// GPT4o is the GPT-4o profile.
func GPT4o() Profile { return Profile{p: llm.GPT4o()} }

// CodeLlama2 is the CodeLLaMa 2 (70B) profile.
func CodeLlama2() Profile { return Profile{p: llm.CodeLlama2()} }

// Llama3 is the LLaMa3-70B profile.
func Llama3() Profile { return Profile{p: llm.Llama3()} }
