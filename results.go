package assertionbench

import (
	"encoding/json"
	"fmt"

	"assertionbench/internal/eval"
)

// Verdict is the paper's three-way assertion classification (Sec. IV).
type Verdict string

// Verdicts.
const (
	// VerdictPass: the FPV engine attests the assertion (valid, vacuous,
	// or bounded-pass).
	VerdictPass Verdict = "pass"
	// VerdictCEX: the FPV engine produced a counter-example.
	VerdictCEX Verdict = "cex"
	// VerdictError: the assertion is syntactically or semantically
	// invalid even after correction.
	VerdictError Verdict = "error"
	// VerdictUnknown: an anytime budget (RunOptions.Deadline /
	// DesignBudget) expired before the engine decided the assertion.
	// Never produced by unbudgeted runs.
	VerdictUnknown Verdict = "unknown"
)

func newVerdict(v eval.Verdict) Verdict {
	switch v {
	case eval.VerdictPass:
		return VerdictPass
	case eval.VerdictCEX:
		return VerdictCEX
	case eval.VerdictUnknown:
		return VerdictUnknown
	default:
		return VerdictError
	}
}

func (v Verdict) internal() eval.Verdict {
	switch v {
	case VerdictPass:
		return eval.VerdictPass
	case VerdictCEX:
		return eval.VerdictCEX
	case VerdictUnknown:
		return eval.VerdictUnknown
	default:
		return eval.VerdictError
	}
}

// Metrics are the Pass/CEX/Error counts over all generated assertions.
type Metrics struct {
	NPass  int `json:"n_pass"`
	NCEX   int `json:"n_cex"`
	NError int `json:"n_error"`
	// NStatic counts verdicts discharged by the static pre-verification
	// pass without any state-space search — an overlay on the other
	// counters, not a fourth class.
	NStatic int `json:"n_static"`
	// NUnknown counts verdicts a budgeted (anytime) run left undecided.
	// Always zero for unbudgeted runs.
	NUnknown int `json:"n_unknown"`
	// NErrored counts designs (not assertions) whose job failed and was
	// converted to an errored outcome by ErrorPolicyContinue. A
	// design-level overlay like NStatic, not part of Total. Always zero
	// under the default ErrorPolicyFail.
	NErrored int `json:"n_errored"`
}

// MarshalJSON emits counts plus derived fractions for downstream tooling.
func (m Metrics) MarshalJSON() ([]byte, error) {
	return json.Marshal(eval.Metrics(m))
}

// Add accumulates one verdict.
func (m *Metrics) Add(v Verdict) {
	switch v {
	case VerdictPass:
		m.NPass++
	case VerdictCEX:
		m.NCEX++
	case VerdictUnknown:
		m.NUnknown++
	default:
		m.NError++
	}
}

// Merge accumulates another Metrics value — the collector operation
// stream consumers need to reproduce Run's totals.
func (m *Metrics) Merge(o Metrics) {
	m.NPass += o.NPass
	m.NCEX += o.NCEX
	m.NError += o.NError
	m.NStatic += o.NStatic
	m.NUnknown += o.NUnknown
	m.NErrored += o.NErrored
}

// Total is the number of classified assertions.
func (m Metrics) Total() int { return eval.Metrics(m).Total() }

// Pass is the fraction of valid (incl. vacuous) assertions.
func (m Metrics) Pass() float64 { return eval.Metrics(m).Pass() }

// CEX is the fraction of refuted assertions.
func (m Metrics) CEX() float64 { return eval.Metrics(m).CEX() }

// Error is the fraction of syntactically/semantically broken assertions.
func (m Metrics) Error() float64 { return eval.Metrics(m).Error() }

// Static is the fraction of verdicts discharged by the static
// pre-verification pass.
func (m Metrics) Static() float64 { return eval.Metrics(m).Static() }

// Unknown is the fraction of verdicts a budgeted run left undecided.
func (m Metrics) Unknown() float64 { return eval.Metrics(m).Unknown() }

func (m Metrics) String() string { return eval.Metrics(m).String() }

// DesignOutcome records one design's generated assertions and verdicts.
type DesignOutcome struct {
	// Index is the design's global corpus position: stable across worker
	// counts and shards, so streamed outcomes from different shards can
	// be interleaved or concatenated without ambiguity.
	Index  int
	Design string
	// Generated is the raw candidate list; Corrected the post-corrector
	// list (nil when the corrector is off).
	Generated []string
	Corrected []string
	Verdicts  []Verdict
	// StaticDischarged counts this design's verdicts decided by the
	// static pre-verification pass without any state-space search.
	StaticDischarged int
	// Channel bookkeeping from the generator (for ablation analysis).
	OffTask  int
	Grounded int
	// Truncated reports that an anytime budget (RunOptions.Deadline /
	// DesignBudget) expired before this design's verification finished:
	// decided verdicts are kept, the rest are VerdictUnknown, and a
	// design the run never reached has no verdicts at all. Always false
	// in unbudgeted runs.
	Truncated bool
	// Errored reports that this design's job failed — a design or
	// generator error, a recovered panic, transient retries exhausted —
	// and RunOptions.ErrorPolicy "continue" converted the failure into
	// an outcome instead of ending the stream. Err holds the failure
	// message; an errored outcome carries no verdicts. Always false
	// under the default "fail" policy.
	Errored bool
	Err     string
}

// Metrics folds the outcome's verdicts into counts.
func (o DesignOutcome) Metrics() Metrics {
	var m eval.Metrics
	for _, v := range o.Verdicts {
		m.Add(v.internal())
	}
	m.NStatic = o.StaticDischarged
	if o.Errored {
		m.NErrored = 1
	}
	return Metrics(m)
}

func newDesignOutcome(o eval.DesignOutcome) DesignOutcome {
	out := DesignOutcome{
		Index:            o.Index,
		Design:           o.Design,
		Generated:        o.Generated,
		Corrected:        o.Corrected,
		StaticDischarged: o.StaticDischarged,
		OffTask:          o.OffTask,
		Grounded:         o.Grounded,
		Truncated:        o.Truncated,
		Errored:          o.Errored,
		Err:              o.Err,
	}
	if o.Verdicts != nil {
		out.Verdicts = make([]Verdict, len(o.Verdicts))
		for i, v := range o.Verdicts {
			out.Verdicts[i] = newVerdict(v)
		}
	}
	return out
}

func (o DesignOutcome) internal() eval.DesignOutcome {
	out := eval.DesignOutcome{
		Index:            o.Index,
		Design:           o.Design,
		Generated:        o.Generated,
		Corrected:        o.Corrected,
		StaticDischarged: o.StaticDischarged,
		OffTask:          o.OffTask,
		Grounded:         o.Grounded,
		Truncated:        o.Truncated,
		Errored:          o.Errored,
		Err:              o.Err,
	}
	if o.Verdicts != nil {
		out.Verdicts = make([]eval.Verdict, len(o.Verdicts))
		for i, v := range o.Verdicts {
			out.Verdicts[i] = v.internal()
		}
	}
	return out
}

// RunResult is one (generator, k) evaluation over the corpus.
type RunResult struct {
	// Generator is the assertion source's name (a model or miner).
	Generator string
	Shots     int
	Metrics   Metrics
	Outcomes  []DesignOutcome
}

func (r RunResult) String() string {
	return fmt.Sprintf("%s %d-shot: %v", r.Generator, r.Shots, r.Metrics)
}

func newRunResult(r eval.RunResult) RunResult {
	out := RunResult{
		Generator: r.Model,
		Shots:     r.Shots,
		Metrics:   Metrics(r.Metrics),
	}
	if r.Designs != nil {
		out.Outcomes = make([]DesignOutcome, len(r.Designs))
		for i, d := range r.Designs {
			out.Outcomes[i] = newDesignOutcome(d)
		}
	}
	return out
}

func (r RunResult) internal() eval.RunResult {
	out := eval.RunResult{
		Model:   r.Generator,
		Shots:   r.Shots,
		Metrics: eval.Metrics(r.Metrics),
	}
	if r.Outcomes != nil {
		out.Designs = make([]eval.DesignOutcome, len(r.Outcomes))
		for i, o := range r.Outcomes {
			out.Designs[i] = o.internal()
		}
	}
	return out
}

func newRunResults(rs []eval.RunResult) []RunResult {
	out := make([]RunResult, len(rs))
	for i, r := range rs {
		out[i] = newRunResult(r)
	}
	return out
}

func internalRunResults(rs []RunResult) []eval.RunResult {
	out := make([]eval.RunResult, len(rs))
	for i, r := range rs {
		out[i] = r.internal()
	}
	return out
}
