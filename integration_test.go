package assertionbench_test

import (
	"context"
	"strings"
	"testing"

	"assertionbench"
	"assertionbench/internal/bench"
	"assertionbench/internal/coverage"
	"assertionbench/internal/fpv"
	"assertionbench/internal/mine"
	"assertionbench/internal/sim"
	"assertionbench/internal/verilog"
)

// TestFullLoopOnArbiter drives the complete Fig. 4 loop on the paper's
// Fig. 1 arbiter through the public facade: benchmark load, k-shot
// generation, correction, FPV.
func TestFullLoopOnArbiter(t *testing.T) {
	ctx := context.Background()
	b, err := assertionbench.Load(ctx, assertionbench.Options{MaxDesigns: 3})
	if err != nil {
		t.Fatal(err)
	}
	gen := assertionbench.NewModelGenerator(assertionbench.GPT4o())
	for _, shots := range []int{1, 5} {
		out, err := b.GenerateAssertions(ctx, gen, bench.TrainArbiter, shots, 11)
		if err != nil {
			t.Fatal(err)
		}
		corrected := assertionbench.CorrectAssertions(bench.TrainArbiter, out.Assertions)
		if len(corrected) == 0 {
			t.Fatalf("%d-shot generation produced nothing", shots)
		}
		results, err := assertionbench.VerifyAssertions(ctx, bench.TrainArbiter, corrected, assertionbench.VerifyOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range results {
			if r.Status == assertionbench.StatusCEX && r.CEX == nil {
				t.Errorf("CEX verdict without trace for %q", corrected[i])
			}
		}
	}
}

// TestMinedAssertionsCoverAndExport checks miners -> coverage -> VCD
// interop on a corpus design.
func TestMinedAssertionsCoverAndExport(t *testing.T) {
	var fifo bench.Design
	for _, d := range bench.TestCorpus() {
		if d.Name == "fifo_mem" {
			fifo = d
		}
	}
	nl, err := verilog.ElaborateSource(fifo.Source, fifo.Name)
	if err != nil {
		t.Fatal(err)
	}
	mined, err := mine.Harm(context.Background(), nl, mine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(mined) == 0 {
		t.Fatal("no mined assertions")
	}
	var texts []string
	for _, m := range mined {
		texts = append(texts, m.Assertion.String())
	}
	rep, err := coverage.Measure(context.Background(), nl, texts, coverage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goodness() <= 0 {
		t.Errorf("mined set has zero goodness: %v", rep)
	}
	// Export a trace of the design as VCD.
	tr, err := sim.RandomTrace(nl, 16, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := sim.WriteVCD(&sb, tr, fifo.Name); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "$enddefinitions") {
		t.Error("VCD export incomplete")
	}
}

// TestSecurityFlowEndToEnd: security designs -> security miner ->
// verified assertions -> taint cross-check.
func TestSecurityFlowEndToEnd(t *testing.T) {
	for _, d := range bench.SecurityDesigns() {
		nl, err := verilog.ElaborateSource(d.Source, d.Name)
		if err != nil {
			t.Fatal(err)
		}
		mined, err := mine.Security(context.Background(), nl, mine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mined {
			// Everything the security miner emits must re-verify.
			r := fpv.Verify(context.Background(), nl, m.Assertion, fpv.Options{})
			if !r.Status.IsPass() {
				t.Errorf("%s: %q fails re-verification (%v)", d.Name, m.Assertion, r.Status)
			}
		}
	}
}

// TestRangedDelayThroughTheStack: the ##[m:n] extension must flow from
// text through correction, verification and coverage.
func TestRangedDelayThroughTheStack(t *testing.T) {
	src := bench.TestCorpus()[21].Source // counter.v
	nl, err := verilog.ElaborateSource(src, "")
	if err != nil {
		t.Fatal(err)
	}
	prop := "rst == 1 |-> ##[1:2] count == 0"
	r := fpv.VerifySource(context.Background(), nl, prop, fpv.Options{})
	if r.Status != fpv.StatusProven {
		t.Fatalf("ranged reset property: %v, want proven", r.Status)
	}
	rep, err := coverage.Measure(context.Background(), nl, []string{prop}, coverage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Assertions != 1 || rep.ActivationCoverage <= 0 {
		t.Errorf("ranged assertion not measured: %v", rep)
	}
}

// TestCorpusDesignsVerifySomething: every design in the corpus must admit
// at least one trivially-true assertion through the full stack (guards
// against corpus designs the FPV substrate cannot handle at all).
func TestCorpusDesignsVerifySomething(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus sweep")
	}
	for _, d := range bench.TestCorpus() {
		nl, err := verilog.ElaborateSource(d.Source, d.Name)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		// Pick the first non-clock top-level net and assert a tautology.
		var sig string
		for _, n := range nl.Nets {
			if !n.IsClock && !strings.Contains(n.Name, ".") {
				sig = n.Name
				break
			}
		}
		if sig == "" {
			t.Fatalf("%s: no usable signal", d.Name)
		}
		prop := sig + " == " + sig + " |-> 1"
		r := fpv.VerifySource(context.Background(), nl, prop, fpv.Options{
			MaxProductStates: 500, MaxInputBits: 6, MaxInputSamples: 4,
			RandomRuns: 2, RandomDepth: 8,
		})
		if !r.Status.IsPass() {
			t.Errorf("%s: tautology verdict %v", d.Name, r.Status)
		}
	}
}
